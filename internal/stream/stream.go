// Package stream generates, serializes and drives open-world arrival
// streams: multi-tenant job traffic whose submission times come from a
// seeded arrival process instead of the static launched-at-t=0 mixes
// the paper evaluates.
//
// A GenSpec names an arrival process (Poisson, diurnal
// sinusoid-modulated, or bursty MMPP), a mean rate, a duration, a seed
// and a tenant mix; Generate expands it into a Trace — an immutable,
// replayable JSONL artifact whose SHA-256 content hash binds every
// result derived from it. A Driver replays a Trace against a Backend
// (the in-process qosd decision loop, or a live daemon's /v1 or /v2
// HTTP API) in arrival order, holding admitted jobs for their
// per-arrival service time and releasing them before later arrivals,
// so the sequence of admission decisions is a pure function of the
// trace — two drives of the same trace through fresh daemons write
// byte-identical decision journals (the CI replay-determinism gate).
//
// All randomness comes from internal/rng's splitmix64 streams forked
// from the spec seed; wall-clock time never influences generation or
// submission order, only the measured time-to-verdict statistics.
package stream

import (
	"errors"
	"fmt"

	"repro/internal/schema"
)

// Arrival processes of GenSpec.Process.
const (
	// ProcessPoisson is a homogeneous Poisson process: i.i.d.
	// exponential inter-arrival times at RatePerSec.
	ProcessPoisson = "poisson"
	// ProcessDiurnal is a non-homogeneous Poisson process whose rate
	// follows a sinusoid around RatePerSec (thinning method): the
	// day/night load swing of serving traffic, compressed to the trace
	// duration.
	ProcessDiurnal = "diurnal"
	// ProcessBursty is a 2-state Markov-modulated Poisson process:
	// exponentially-distributed sojourns alternate between a burst
	// state (BurstFactor times the calm rate) and a calm state, with
	// the calm rate chosen so the mean rate stays RatePerSec —
	// equal-mean-load comparisons against poisson are fair.
	ProcessBursty = "bursty"
)

// Processes lists the supported arrival processes.
func Processes() []string {
	return []string{ProcessPoisson, ProcessDiurnal, ProcessBursty}
}

// ErrBadSpec marks a structurally invalid generation spec or trace.
var ErrBadSpec = errors.New("stream: invalid spec")

// TenantSpec is one tenant of the mix: a weight (its share of
// arrivals), the workload its jobs run, the QoS goal each job carries,
// and how long an admitted job holds its mix slot (virtual trace time).
type TenantSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Workload names a benchmark from internal/workloads (the paper
	// suite or the open-world set: "infer", "rtdet").
	Workload string `json:"workload"`
	// Goal is the typed QoS goal union each arrival submits (null =
	// best effort).
	Goal schema.Goal `json:"goal"`
	// HoldMs is the service time: how long an admitted job occupies its
	// mix slot before the driver releases it. 0 means the job is never
	// released during the trace.
	HoldMs int64 `json:"hold_ms,omitempty"`
	// GPUFraction is the fractional-GPU share arrivals request when the
	// trace is driven against a /v2 fleet backend (ignored by v1).
	GPUFraction float64 `json:"gpu_fraction,omitempty"`
}

// GenSpec parameterizes one generated arrival stream.
type GenSpec struct {
	// Process is ProcessPoisson, ProcessDiurnal or ProcessBursty.
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate across the whole trace.
	RatePerSec float64 `json:"rate_per_sec"`
	// DurationMs is the trace length in virtual milliseconds.
	DurationMs int64 `json:"duration_ms"`
	// Seed feeds the forked rng streams (arrival times, tenant picks,
	// modulation). Same spec, same seed — same bytes.
	Seed uint64 `json:"seed"`
	// Tenants is the tenant mix; arrivals are assigned by weight.
	Tenants []TenantSpec `json:"tenants"`

	// DiurnalPeriodMs is the sinusoid period (diurnal only);
	// 0 means one full cycle over DurationMs.
	DiurnalPeriodMs int64 `json:"diurnal_period_ms,omitempty"`
	// DiurnalAmp is the sinusoid amplitude as a fraction of RatePerSec,
	// in (0,1]; 0 means the default 0.8.
	DiurnalAmp float64 `json:"diurnal_amp,omitempty"`

	// BurstFactor is the burst-state rate multiplier (bursty only);
	// 0 means the default 8.
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstMs / CalmMs are the mean sojourn times of the two MMPP
	// states; 0 means the defaults 200ms / 1800ms (10% burst duty).
	BurstMs float64 `json:"burst_ms,omitempty"`
	CalmMs  float64 `json:"calm_ms,omitempty"`
}

// Defaults of the optional process parameters.
const (
	DefaultDiurnalAmp  = 0.8
	DefaultBurstFactor = 8.0
	DefaultBurstMs     = 200.0
	DefaultCalmMs      = 1800.0
)

// withDefaults returns the spec with optional parameters filled in, so
// generation and the serialized header agree on the effective values.
func (s GenSpec) withDefaults() GenSpec {
	if s.Process == ProcessDiurnal {
		if s.DiurnalPeriodMs == 0 {
			s.DiurnalPeriodMs = s.DurationMs
		}
		if s.DiurnalAmp == 0 {
			s.DiurnalAmp = DefaultDiurnalAmp
		}
	}
	if s.Process == ProcessBursty {
		if s.BurstFactor == 0 {
			s.BurstFactor = DefaultBurstFactor
		}
		if s.BurstMs == 0 {
			s.BurstMs = DefaultBurstMs
		}
		if s.CalmMs == 0 {
			s.CalmMs = DefaultCalmMs
		}
	}
	return s
}

// Validate checks the spec's invariants (after defaults).
func (s GenSpec) Validate() error {
	switch s.Process {
	case ProcessPoisson, ProcessDiurnal, ProcessBursty:
	default:
		return fmt.Errorf("%w: unknown process %q (want poisson, diurnal or bursty)", ErrBadSpec, s.Process)
	}
	if s.RatePerSec <= 0 {
		return fmt.Errorf("%w: rate_per_sec must be positive", ErrBadSpec)
	}
	if s.DurationMs <= 0 {
		return fmt.Errorf("%w: duration_ms must be positive", ErrBadSpec)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("%w: at least one tenant is required", ErrBadSpec)
	}
	seen := make(map[string]bool, len(s.Tenants))
	var weight float64
	for i, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("%w: tenant %d needs a name", ErrBadSpec, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("%w: duplicate tenant %q", ErrBadSpec, t.Name)
		}
		seen[t.Name] = true
		if t.Weight <= 0 {
			return fmt.Errorf("%w: tenant %q weight must be positive", ErrBadSpec, t.Name)
		}
		if t.Workload == "" {
			return fmt.Errorf("%w: tenant %q needs a workload", ErrBadSpec, t.Name)
		}
		if t.HoldMs < 0 {
			return fmt.Errorf("%w: tenant %q hold_ms must be >= 0", ErrBadSpec, t.Name)
		}
		if t.GPUFraction < 0 || t.GPUFraction > 1 {
			return fmt.Errorf("%w: tenant %q gpu_fraction outside [0,1]", ErrBadSpec, t.Name)
		}
		if err := t.Goal.Validate(); err != nil {
			return fmt.Errorf("%w: tenant %q: %v", ErrBadSpec, t.Name, err)
		}
		weight += t.Weight
	}
	if weight <= 0 {
		return fmt.Errorf("%w: tenant weights sum to zero", ErrBadSpec)
	}
	if s.Process == ProcessDiurnal {
		if s.DiurnalPeriodMs < 0 {
			return fmt.Errorf("%w: diurnal_period_ms must be >= 0", ErrBadSpec)
		}
		if s.DiurnalAmp < 0 || s.DiurnalAmp > 1 {
			return fmt.Errorf("%w: diurnal_amp %v outside (0,1]", ErrBadSpec, s.DiurnalAmp)
		}
	}
	if s.Process == ProcessBursty {
		if s.BurstFactor < 1 {
			return fmt.Errorf("%w: burst_factor must be >= 1", ErrBadSpec)
		}
		if s.BurstMs < 0 || s.CalmMs < 0 {
			return fmt.Errorf("%w: burst_ms/calm_ms must be >= 0", ErrBadSpec)
		}
		// The calm rate is derived to keep the mean at RatePerSec:
		// rate_calm = rate * (1 - f*fb) / (1 - fb) with fb the burst
		// duty cycle. f*fb >= 1 would need a negative calm rate.
		fb := s.BurstMs / (s.BurstMs + s.CalmMs)
		if s.BurstFactor*fb >= 1 {
			return fmt.Errorf("%w: burst_factor %v at duty cycle %.2f implies a negative calm rate", ErrBadSpec, s.BurstFactor, fb)
		}
	}
	return nil
}

// Arrival is one trace event: at virtual time TUs (microseconds from
// trace start), tenant Tenant submits one job of Workload with Goal,
// holding its slot for HoldUs if admitted.
type Arrival struct {
	Seq      int         `json:"seq"`
	TUs      int64       `json:"t_us"`
	Tenant   string      `json:"tenant"`
	Workload string      `json:"workload"`
	Goal     schema.Goal `json:"goal"`
	HoldUs   int64       `json:"hold_us,omitempty"`
	// GPUFraction is the fractional-GPU share for /v2 backends.
	GPUFraction float64 `json:"gpu_fraction,omitempty"`
}
