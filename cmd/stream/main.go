// Command stream generates, replays and drives open-world arrival
// streams (see internal/stream). Three modes:
//
//	generate — expand a seeded arrival-process spec into a replayable
//	           JSONL trace and print its content hash:
//
//	  stream -mode generate -process bursty -rate 8 -duration 30s \
//	      -seed 7 -o trace.jsonl
//
//	drive    — replay a trace (or an inline spec) against an in-process
//	           qosd decision loop and print the per-tenant SLO report
//	           as JSON (admit rate, own-goal misses vs collateral
//	           rejects, time-to-verdict percentiles):
//
//	  stream -mode drive -trace trace.jsonl -scheme rollover -window 50000
//	  stream -mode drive -process poisson -rate 4 -duration 20s -csv
//
//	replay   — drive a trace against a live daemon's /v1 (or, with
//	           -v2, fractional-GPU /v2) HTTP API, optionally paced in
//	           wall-clock time:
//
//	  stream -mode replay -trace trace.jsonl -target http://localhost:8715 -pace 1
//
// Tenants default to the built-in four-tenant open-world mix (LLM
// serving under a p99 latency SLO, periodic real-time detection,
// fraction-goal batch, best-effort background); -tenants FILE loads a
// JSON array of tenant specs instead. Every report embeds the trace's
// SHA-256 so results are bound to the exact traffic they were measured
// under.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/workloads"
)

type options struct {
	mode string

	// Generation spec (generate, and drive/replay without -trace).
	process    string
	rate       float64
	duration   time.Duration
	seed       uint64
	tenants    string
	out        string
	diurnalAmp float64
	burstX     float64

	// Trace input (drive, replay).
	trace string

	// drive: in-process daemon knobs.
	schemeName string
	window     int64
	scale      bool
	workers    int
	mix        int
	fastPath   bool
	journal    string
	csvOut     bool

	// replay: live-daemon target.
	target string
	v2     bool
	pace   float64
}

func main() {
	var o options
	flag.StringVar(&o.mode, "mode", "drive", "generate | drive | replay")
	flag.StringVar(&o.process, "process", stream.ProcessPoisson, "arrival process: poisson | diurnal | bursty")
	flag.Float64Var(&o.rate, "rate", 4, "mean arrivals per second")
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "trace length (virtual time)")
	flag.Uint64Var(&o.seed, "seed", workloads.Seed, "generation seed (same spec+seed = same bytes)")
	flag.StringVar(&o.tenants, "tenants", "", "JSON file with the tenant mix (default: built-in open-world mix)")
	flag.StringVar(&o.out, "o", "trace.jsonl", "output path for -mode generate")
	flag.Float64Var(&o.diurnalAmp, "diurnal-amp", 0, "diurnal sinusoid amplitude in (0,1] (0 = default)")
	flag.Float64Var(&o.burstX, "burst-factor", 0, "bursty state rate multiplier (0 = default)")
	flag.StringVar(&o.trace, "trace", "", "replay this trace file instead of generating one")
	flag.StringVar(&o.schemeName, "scheme", "rollover", "QoS scheme (drive)")
	flag.Int64Var(&o.window, "window", 50_000, "measurement window in cycles per what-if run (drive)")
	flag.BoolVar(&o.scale, "scale56", false, "use the 56-SM configuration (drive)")
	flag.IntVar(&o.workers, "workers", 2, "evaluation worker pool size (drive)")
	flag.IntVar(&o.mix, "mix", 3, "admitted-mix capacity: the daemon's MaxMix (drive), or the target's -mix (replay)")
	flag.BoolVar(&o.fastPath, "fast-path", true, "tiered decision path (drive)")
	flag.StringVar(&o.journal, "journal", "", "decision journal path (drive)")
	flag.BoolVar(&o.csvOut, "csv", false, "emit the report as CSV instead of JSON")
	flag.StringVar(&o.target, "target", "http://localhost:8715", "daemon base URL (replay)")
	flag.BoolVar(&o.v2, "v2", false, "submit through the fractional-GPU /v2 API (replay)")
	flag.Float64Var(&o.pace, "pace", 0, "wall-clock pacing: 1 = real time, 2 = 2x speed, 0 = back-to-back")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

// loadOrGenerate resolves the trace: -trace reads a committed file,
// otherwise the generation flags are expanded on the spot.
func loadOrGenerate(o options) (*stream.Trace, error) {
	if o.trace != "" {
		return stream.ReadFile(o.trace)
	}
	tenants := stream.DefaultTenants()
	if o.tenants != "" {
		b, err := os.ReadFile(o.tenants)
		if err != nil {
			return nil, err
		}
		tenants = nil
		if err := json.Unmarshal(b, &tenants); err != nil {
			return nil, fmt.Errorf("%s: %w", o.tenants, err)
		}
	}
	return stream.Generate(stream.GenSpec{
		Process:     o.process,
		RatePerSec:  o.rate,
		DurationMs:  o.duration.Milliseconds(),
		Seed:        o.seed,
		Tenants:     tenants,
		DiurnalAmp:  o.diurnalAmp,
		BurstFactor: o.burstX,
	})
}

func emit(o options, tr *stream.Trace, rep *stream.Report) error {
	if o.csvOut {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write(stream.CSVHeader()); err != nil {
			return err
		}
		if err := w.WriteAll(stream.CSVRows(rep, tr.Spec)); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func run(o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch o.mode {
	case "generate":
		tr, err := loadOrGenerate(o)
		if err != nil {
			return err
		}
		if err := tr.WriteFile(o.out); err != nil {
			return err
		}
		hash, err := tr.Hash()
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d arrivals over %s (%s), sha256 %s\n",
			o.out, len(tr.Events), o.duration, tr.Spec.Process, hash)
		return nil

	case "drive":
		tr, err := loadOrGenerate(o)
		if err != nil {
			return err
		}
		scheme, err := core.ParseScheme(o.schemeName)
		if err != nil {
			return err
		}
		gpu := config.Base()
		if o.scale {
			gpu = config.Scale56()
		}
		runner, err := exp.NewRunner(o.workers,
			exp.WithSessionOptions(core.WithGPU(gpu), core.WithWindow(o.window)),
			exp.WithFaultPolicy(exp.FaultPolicy{
				CaseTimeout: 2 * time.Minute,
				Retry: retry.Policy{
					MaxAttempts: 2,
					BaseDelay:   100 * time.Millisecond,
					Seed:        workloads.Seed,
				},
			}))
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			Runner:      runner,
			Scheme:      scheme,
			MaxMix:      o.mix,
			JournalPath: o.journal,
			FastPath:    o.fastPath,
		})
		if err != nil {
			return err
		}
		d := &stream.Driver{
			Backend:  stream.ServerBackend{Server: srv},
			Registry: srv.Registry(),
			Pace:     o.pace,
			MixSlots: o.mix,
		}
		rep, err := d.Run(ctx, tr)
		if err != nil {
			return err
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return err
		}
		return emit(o, tr, rep)

	case "replay":
		tr, err := loadOrGenerate(o)
		if err != nil {
			return err
		}
		// MixSlots mirrors the target daemon's -mix so the driver advances
		// virtual time to the next release instead of wedging the serial
		// replay against a full mix.
		d := &stream.Driver{
			Backend:  &stream.HTTPBackend{BaseURL: o.target, V2: o.v2},
			Pace:     o.pace,
			MixSlots: o.mix,
		}
		rep, err := d.Run(ctx, tr)
		if err != nil {
			return err
		}
		return emit(o, tr, rep)

	default:
		return fmt.Errorf("unknown mode %q (want generate, drive or replay)", o.mode)
	}
}
