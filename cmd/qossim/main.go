// Command qossim regenerates the paper's tables and figures on the
// simulator. Each experiment prints the same rows/series the paper
// reports, next to a note quoting the paper's own numbers. Sweeps run on
// a parallel worker pool (-workers, default one per CPU) with results
// bit-identical to a serial run; Ctrl-C cancels cleanly mid-sweep.
//
// Usage:
//
//	qossim -exp fig6a              # reduced study (fast)
//	qossim -exp fig6c -full        # the complete 60-trio sweep
//	qossim -exp all -window 500000 # everything, longer window
//	qossim -exp fig6a -workers 4   # cap the worker pool
//
// Experiments: table1, fig5, fig6a, fig6b, fig6c, fig7, fig8a, fig8b,
// fig8c, fig9, fig10, fig11, fig12, fig13, fig14, ablate-history,
// ablate-static, ablate-preempt, ablate-epoch, ablate-nqinit, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	var (
		expName   = flag.String("exp", "fig6a", "experiment to run (or 'all')")
		full      = flag.Bool("full", false, "run the complete study (90 pairs / 60 trios, 10 goals)")
		subsample = flag.Int("subsample", 6, "take every k-th pair/trio in reduced mode")
		window    = flag.Int64("window", 200_000, "measurement window in cycles")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		chart     = flag.Bool("chart", false, "render figures as ASCII bar charts")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *expName, *full, *subsample, *window, *workers, *quiet, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
}

// newStudy builds one study per device configuration; studies are shared
// across drivers so pair sweeps memoized per scheme (and the isolated-IPC
// baselines) are reused by every figure that needs them.
func newStudy(cfg config.GPU, window int64, workers int, full bool, subsample int, quiet bool) (exp.Study, error) {
	r, err := exp.NewRunner(workers, core.WithGPU(cfg), core.WithWindow(window))
	if err != nil {
		return exp.Study{}, err
	}
	var st exp.Study
	if full {
		st = exp.FullStudy(r)
	} else {
		st = exp.ReducedStudy(r, subsample)
	}
	if !quiet {
		st.Progress = func(p exp.Progress) {
			if p.Done == p.Total || p.Done%25 == 0 {
				fmt.Fprintf(os.Stderr, "\r[%6s] %-24s %d/%d  %.1f case/s  ETA %-8s ",
					p.Elapsed.Round(time.Second), p.Stage, p.Done, p.Total,
					p.CasesPerSec, p.ETA.Round(time.Second))
			}
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return st, nil
}

type driver struct {
	name  string
	scale bool // uses the 56-SM configuration
	fn    func(context.Context, exp.Study) (*exp.Table, error)
}

func drivers() []driver {
	return []driver{
		{"fig5", false, exp.Fig5},
		{"fig6a", false, exp.Fig6a},
		{"fig6b", false, exp.Fig6b},
		{"fig6c", false, exp.Fig6c},
		{"fig7", false, exp.Fig7},
		{"fig8a", false, exp.Fig8a},
		{"fig8b", false, exp.Fig8b},
		{"fig8c", false, exp.Fig8c},
		{"fig9", false, exp.Fig9},
		{"fig10", false, exp.Fig10},
		{"fig11", false, exp.Fig11},
		{"fig12", true, exp.Fig12},
		{"fig13", true, exp.Fig13},
		{"fig14", false, exp.Fig14},
		{"ablate-history", false, exp.AblateHistory},
		{"ablate-static", false, exp.AblateStatic},
		{"ablate-preempt", false, exp.AblatePreemption},
		{"ablate-epoch", false, func(ctx context.Context, st exp.Study) (*exp.Table, error) {
			return exp.AblateEpochLength(ctx, st, nil)
		}},
		{"ablate-nqinit", false, func(ctx context.Context, st exp.Study) (*exp.Table, error) {
			return exp.AblateNonQoSInit(ctx, st, nil)
		}},
	}
}

func run(ctx context.Context, name string, full bool, subsample int, window int64, workers int, quiet, chart bool) error {
	if name == "table1" {
		fmt.Print(exp.Table1(config.Base()))
		return nil
	}
	var selected []driver
	for _, d := range drivers() {
		if d.name == name || name == "all" {
			selected = append(selected, d)
		}
	}
	if name == "all" {
		fmt.Print(exp.Table1(config.Base()))
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", name)
	}
	// One study per device configuration, shared across drivers.
	studies := make(map[bool]exp.Study)
	for _, d := range selected {
		st, ok := studies[d.scale]
		if !ok {
			cfg := config.Base()
			if d.scale {
				cfg = config.Scale56()
			}
			var err error
			st, err = newStudy(cfg, window, workers, full, subsample, quiet)
			if err != nil {
				return err
			}
			studies[d.scale] = st
		}
		t, err := d.fn(ctx, st)
		if err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
		if chart {
			fmt.Print(t.Chart(48))
		} else {
			fmt.Print(t)
		}
		fmt.Println()
	}
	if !quiet {
		for _, scale := range []bool{false, true} {
			st, ok := studies[scale]
			if !ok {
				continue
			}
			for _, m := range st.Runner.Metrics() {
				fmt.Fprintf(os.Stderr, "sweep %-24s %4d cases in %8s (%.1f case/s)\n",
					m.Stage, m.Cases, m.Wall.Round(time.Millisecond), m.CasesPerSec)
			}
		}
	}
	return nil
}
