// Command qossim regenerates the paper's tables and figures on the
// simulator. Each experiment prints the same rows/series the paper
// reports, next to a note quoting the paper's own numbers.
//
// Usage:
//
//	qossim -exp fig6a              # reduced study (fast)
//	qossim -exp fig6c -full        # the complete 60-trio sweep
//	qossim -exp all -window 500000 # everything, longer window
//
// Experiments: table1, fig5, fig6a, fig6b, fig6c, fig7, fig8a, fig8b,
// fig8c, fig9, fig10, fig11, fig12, fig13, fig14, ablate-history,
// ablate-static, ablate-preempt, ablate-epoch, ablate-nqinit, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	var (
		expName   = flag.String("exp", "fig6a", "experiment to run (or 'all')")
		full      = flag.Bool("full", false, "run the complete study (90 pairs / 60 trios, 10 goals)")
		subsample = flag.Int("subsample", 6, "take every k-th pair/trio in reduced mode")
		window    = flag.Int64("window", 200_000, "measurement window in cycles")
		quiet     = flag.Bool("q", false, "suppress progress output")
		chart     = flag.Bool("chart", false, "render figures as ASCII bar charts")
	)
	flag.Parse()

	if err := run(*expName, *full, *subsample, *window, *quiet, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
}

func newStudy(cfg config.GPU, window int64, full bool, subsample int, quiet bool) (exp.Study, error) {
	s, err := core.NewSession(core.Config{GPU: cfg, WindowCycles: window})
	if err != nil {
		return exp.Study{}, err
	}
	var st exp.Study
	if full {
		st = exp.FullStudy(s)
	} else {
		st = exp.ReducedStudy(s, subsample)
	}
	if !quiet {
		start := time.Now()
		st.Progress = func(stage string, done, total int) {
			if done == total || done%25 == 0 {
				fmt.Fprintf(os.Stderr, "\r[%6s] %-24s %d/%d   ",
					time.Since(start).Round(time.Second), stage, done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return st, nil
}

type driver struct {
	name  string
	scale bool // uses the 56-SM configuration
	fn    func(exp.Study) (*exp.Table, error)
}

func drivers() []driver {
	return []driver{
		{"fig5", false, exp.Fig5},
		{"fig6a", false, exp.Fig6a},
		{"fig6b", false, exp.Fig6b},
		{"fig6c", false, exp.Fig6c},
		{"fig7", false, exp.Fig7},
		{"fig8a", false, exp.Fig8a},
		{"fig8b", false, exp.Fig8b},
		{"fig8c", false, exp.Fig8c},
		{"fig9", false, exp.Fig9},
		{"fig10", false, exp.Fig10},
		{"fig11", false, exp.Fig11},
		{"fig12", true, exp.Fig12},
		{"fig13", true, exp.Fig13},
		{"fig14", false, exp.Fig14},
		{"ablate-history", false, exp.AblateHistory},
		{"ablate-static", false, exp.AblateStatic},
		{"ablate-preempt", false, exp.AblatePreemption},
		{"ablate-epoch", false, func(st exp.Study) (*exp.Table, error) { return exp.AblateEpochLength(st, nil) }},
		{"ablate-nqinit", false, func(st exp.Study) (*exp.Table, error) { return exp.AblateNonQoSInit(st, nil) }},
	}
}

func run(name string, full bool, subsample int, window int64, quiet, chart bool) error {
	if name == "table1" {
		fmt.Print(exp.Table1(config.Base()))
		return nil
	}
	var selected []driver
	for _, d := range drivers() {
		if d.name == name || name == "all" {
			selected = append(selected, d)
		}
	}
	if name == "all" {
		fmt.Print(exp.Table1(config.Base()))
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", name)
	}
	for _, d := range selected {
		cfg := config.Base()
		if d.scale {
			cfg = config.Scale56()
		}
		st, err := newStudy(cfg, window, full, subsample, quiet)
		if err != nil {
			return err
		}
		t, err := d.fn(st)
		if err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
		if chart {
			fmt.Print(t.Chart(48))
		} else {
			fmt.Print(t)
		}
		fmt.Println()
	}
	return nil
}
