// Command qossim regenerates the paper's tables and figures on the
// simulator. Each experiment prints the same rows/series the paper
// reports, next to a note quoting the paper's own numbers. Sweeps run on
// a parallel worker pool (-workers, default one per CPU) with results
// bit-identical to a serial run; Ctrl-C cancels cleanly mid-sweep.
//
// Long studies can checkpoint to a journal (-journal) and, after an
// interruption, resume (-resume) without recomputing finished cases;
// resumed figures are bit-identical to an uninterrupted run. -retries
// and -case-timeout bound individual flaky or wedged cases; figures
// still require complete grids, so a case failing all attempts fails its
// experiment (the journal keeps everything completed so far).
//
// Usage:
//
//	qossim -exp fig6a              # reduced study (fast)
//	qossim -exp fig6c -full        # the complete 60-trio sweep
//	qossim -exp all -window 500000 # everything, longer window
//	qossim -exp fig6a -workers 4   # cap the worker pool
//	qossim -exp all -full -journal study.ckpt          # checkpoint
//	qossim -exp all -full -journal study.ckpt -resume  # continue
//
// Experiments: table1, fig5, fig6a, fig6b, fig6c, fig7, fig8a, fig8b,
// fig8c, fig9, fig10, fig11, fig12, fig13, fig14, ablate-history,
// ablate-static, ablate-preempt, ablate-epoch, ablate-nqinit, all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// options carries the parsed command line.
type options struct {
	expName     string
	full        bool
	subsample   int
	window      int64
	workers     int
	quiet       bool
	chart       bool
	journalPath string
	resume      bool
	failFast    bool
	caseTimeout time.Duration
	retries     int
	traceDir    string
	traceFmt    string
	shards      int
}

func main() {
	var o options
	flag.StringVar(&o.expName, "exp", "fig6a", "experiment to run (or 'all')")
	flag.BoolVar(&o.full, "full", false, "run the complete study (90 pairs / 60 trios, 10 goals)")
	flag.IntVar(&o.subsample, "subsample", 6, "take every k-th pair/trio in reduced mode")
	flag.Int64Var(&o.window, "window", 200_000, "measurement window in cycles")
	flag.IntVar(&o.workers, "workers", 0, "parallel sweep workers (0 = one per CPU)")
	flag.BoolVar(&o.quiet, "q", false, "suppress progress output")
	flag.BoolVar(&o.chart, "chart", false, "render figures as ASCII bar charts")
	flag.StringVar(&o.journalPath, "journal", "", "checkpoint journal file (completed cases are appended)")
	flag.BoolVar(&o.resume, "resume", false, "resume from the journal, skipping already-completed cases")
	flag.BoolVar(&o.failFast, "fail-fast", false, "abort a sweep on the first failing case")
	flag.DurationVar(&o.caseTimeout, "case-timeout", 0, "per-case deadline (0 = none)")
	flag.IntVar(&o.retries, "retries", 0, "extra attempts per failing case")
	flag.StringVar(&o.traceDir, "trace", "", "directory for per-case event traces (empty = tracing off)")
	flag.StringVar(&o.traceFmt, "trace-format", "jsonl", "trace encoding: jsonl|chrome")
	flag.IntVar(&o.shards, "shards", 1, "step the SMs in this many parallel shards per run (bit-identical to -shards=1)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
}

// openJournal opens (or creates) the checkpoint journal. The header hash
// binds the file to the study shape; the per-stage keys inside bind each
// case to the exact session config and grid, so one journal safely backs
// both the base and 56-SM studies of an -exp all run.
func openJournal(o options) (*journal.Journal, error) {
	if o.journalPath == "" {
		if o.resume {
			return nil, errors.New("-resume requires -journal")
		}
		return nil, nil
	}
	hash, err := journal.Hash(struct {
		Window    int64
		Full      bool
		Subsample int
	}{o.window, o.full, o.subsample})
	if err != nil {
		return nil, err
	}
	if o.resume {
		return journal.Open(o.journalPath, hash)
	}
	if _, err := os.Stat(o.journalPath); err == nil {
		return nil, fmt.Errorf("journal %s exists; pass -resume to continue it or remove it first", o.journalPath)
	}
	return journal.Create(o.journalPath, hash)
}

// newStudy builds one study per device configuration; studies are shared
// across drivers so pair sweeps memoized per scheme (and the isolated-IPC
// baselines) are reused by every figure that needs them.
func newStudy(cfg config.GPU, o options, jnl *journal.Journal) (exp.Study, error) {
	ropts := []exp.Option{
		exp.WithSessionOptions(core.WithGPU(cfg), core.WithWindow(o.window), core.WithShards(o.shards)),
		exp.WithFaultPolicy(exp.FaultPolicy{
			FailFast:    o.failFast,
			CaseTimeout: o.caseTimeout,
			Journal:     jnl,
			Retry: retry.Policy{
				MaxAttempts: o.retries + 1,
				BaseDelay:   100 * time.Millisecond,
				Seed:        workloads.Seed,
			},
		}),
	}
	if o.traceDir != "" {
		f, err := trace.ParseFormat(o.traceFmt)
		if err != nil {
			return exp.Study{}, err
		}
		ropts = append(ropts, exp.WithTraceDir(o.traceDir, f))
	}
	r, err := exp.NewRunner(o.workers, ropts...)
	if err != nil {
		return exp.Study{}, err
	}
	var st exp.Study
	if o.full {
		st = exp.FullStudy(r)
	} else {
		st = exp.ReducedStudy(r, o.subsample)
	}
	if !o.quiet {
		st.Progress = func(p exp.Progress) {
			if p.Done == p.Total || p.Done%25 == 0 {
				fmt.Fprintf(os.Stderr, "\r[%6s] %-24s %d/%d  %.1f case/s  ETA %-8s ",
					p.Elapsed.Round(time.Second), p.Stage, p.Done, p.Total,
					p.CasesPerSec, p.ETA.Round(time.Second))
			}
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return st, nil
}

type driver struct {
	name  string
	scale bool // uses the 56-SM configuration
	fn    func(context.Context, exp.Study) (*exp.Table, error)
}

func drivers() []driver {
	return []driver{
		{"fig5", false, exp.Fig5},
		{"fig6a", false, exp.Fig6a},
		{"fig6b", false, exp.Fig6b},
		{"fig6c", false, exp.Fig6c},
		{"fig7", false, exp.Fig7},
		{"fig8a", false, exp.Fig8a},
		{"fig8b", false, exp.Fig8b},
		{"fig8c", false, exp.Fig8c},
		{"fig9", false, exp.Fig9},
		{"fig10", false, exp.Fig10},
		{"fig11", false, exp.Fig11},
		{"fig12", true, exp.Fig12},
		{"fig13", true, exp.Fig13},
		{"fig14", false, exp.Fig14},
		{"ablate-history", false, exp.AblateHistory},
		{"ablate-static", false, exp.AblateStatic},
		{"ablate-preempt", false, exp.AblatePreemption},
		{"ablate-epoch", false, func(ctx context.Context, st exp.Study) (*exp.Table, error) {
			return exp.AblateEpochLength(ctx, st, nil)
		}},
		{"ablate-nqinit", false, func(ctx context.Context, st exp.Study) (*exp.Table, error) {
			return exp.AblateNonQoSInit(ctx, st, nil)
		}},
	}
}

func run(ctx context.Context, o options) error {
	if o.expName == "table1" {
		fmt.Print(exp.Table1(config.Base()))
		return nil
	}
	var selected []driver
	for _, d := range drivers() {
		if d.name == o.expName || o.expName == "all" {
			selected = append(selected, d)
		}
	}
	if o.expName == "all" {
		fmt.Print(exp.Table1(config.Base()))
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", o.expName)
	}
	jnl, err := openJournal(o)
	if err != nil {
		return err
	}
	if jnl != nil {
		defer jnl.Close()
	}
	// One study per device configuration, shared across drivers. The
	// journal is shared too: stage keys disambiguate the configurations.
	studies := make(map[bool]exp.Study)
	for _, d := range selected {
		st, ok := studies[d.scale]
		if !ok {
			cfg := config.Base()
			if d.scale {
				cfg = config.Scale56()
			}
			var err error
			st, err = newStudy(cfg, o, jnl)
			if err != nil {
				return err
			}
			studies[d.scale] = st
		}
		t, err := d.fn(ctx, st)
		if err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
		if o.chart {
			fmt.Print(t.Chart(48))
		} else {
			fmt.Print(t)
		}
		fmt.Println()
	}
	if !o.quiet {
		for _, scale := range []bool{false, true} {
			st, ok := studies[scale]
			if !ok {
				continue
			}
			for _, m := range st.Runner.Metrics() {
				fmt.Fprintf(os.Stderr, "sweep %-24s %4d cases in %8s (%.1f case/s)\n",
					m.Stage, m.Cases, m.Wall.Round(time.Millisecond), m.CasesPerSec)
			}
			for _, rep := range st.Runner.Reports() {
				if rep.Skipped > 0 || rep.Retried > 0 || len(rep.Failed) > 0 {
					fmt.Fprintf(os.Stderr, "sweep %-24s %s\n", rep.Stage, rep.Summary())
				}
			}
		}
	}
	return nil
}
