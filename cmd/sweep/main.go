// Command sweep runs pair or trio co-run studies and emits one CSV row
// per case, for offline plotting of the paper's figures. Cases fan out
// over a parallel worker pool (-workers, default one per CPU); rows are
// emitted in deterministic case order and are bit-identical to a serial
// run. Ctrl-C cancels mid-sweep.
//
// Usage:
//
//	sweep -mode pairs -schemes rollover,spart > pairs.csv
//	sweep -mode trios -nqos 2 -schemes rollover,spart -subsample 2 > trios2.csv
//	sweep -mode pairs -workers 1   # force serial execution
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workloads"
)

func main() {
	var (
		mode      = flag.String("mode", "pairs", "pairs|trios")
		nQoS      = flag.Int("nqos", 1, "QoS kernels per trio (trios mode)")
		schemes   = flag.String("schemes", "rollover,spart", "comma-separated scheme list")
		window    = flag.Int64("window", 200_000, "measurement window in cycles")
		subsample = flag.Int("subsample", 1, "take every k-th pair/trio")
		goalsFlag = flag.String("goals", "", "comma-separated goal fractions (default: paper sweep)")
		scale     = flag.Bool("scale56", false, "use the 56-SM configuration")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *mode, *nQoS, *schemes, *window, *subsample, *goalsFlag, *scale, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseSchemes(s string) ([]core.Scheme, error) {
	var out []core.Scheme
	for _, name := range strings.Split(s, ",") {
		sc, err := core.ParseScheme(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func parseGoals(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func progress(p exp.Progress) {
	if p.Done%20 == 0 || p.Done == p.Total {
		fmt.Fprintf(os.Stderr, "\r%-30s %d/%d  %.1f case/s  ETA %-8s ",
			p.Stage, p.Done, p.Total, p.CasesPerSec, p.ETA.Round(time.Second))
	}
}

func run(ctx context.Context, mode string, nQoS int, schemeList string, window int64, subsample int, goalsFlag string, scale bool, workers int) error {
	schemes, err := parseSchemes(schemeList)
	if err != nil {
		return err
	}
	def := exp.Goals()
	if mode == "trios" && nQoS == 2 {
		def = exp.TwoQoSGoals()
	}
	goals, err := parseGoals(goalsFlag, def)
	if err != nil {
		return err
	}
	cfg := config.Base()
	if scale {
		cfg = config.Scale56()
	}
	runner, err := exp.NewRunner(workers, core.WithGPU(cfg), core.WithWindow(window))
	if err != nil {
		return err
	}
	if subsample < 1 {
		subsample = 1
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch mode {
	case "pairs":
		var pairs []workloads.Pair
		for i, p := range workloads.Pairs() {
			if i%subsample == 0 {
				pairs = append(pairs, p)
			}
		}
		w.Write([]string{"scheme", "qos", "nonqos", "class", "goal", "reached",
			"qos_ipc", "qos_goal_ipc", "goal_ratio", "nonqos_norm_tput", "instr_per_watt"})
		for _, sc := range schemes {
			cases, err := runner.PairSweep(ctx, pairs, goals, sc, progress)
			if err != nil {
				return err
			}
			for _, c := range cases {
				q, nq := c.QoSKernel(), c.NonQoSKernel()
				cls, _ := workloads.PairClass(c.Pair.QoS, c.Pair.NonQoS)
				w.Write([]string{
					sc.Name(), c.Pair.QoS, c.Pair.NonQoS, cls,
					fmt.Sprintf("%.2f", c.Goal),
					fmt.Sprint(c.Res.AllReached),
					fmt.Sprintf("%.2f", q.IPC),
					fmt.Sprintf("%.2f", q.GoalIPC),
					fmt.Sprintf("%.4f", q.GoalRatio),
					fmt.Sprintf("%.4f", nq.NormThroughput),
					fmt.Sprintf("%.3e", c.Res.Power.InstrPerWatt),
				})
			}
			w.Flush()
		}
	case "trios":
		var trios []workloads.Trio
		for i, tr := range workloads.Trios() {
			if i%subsample == 0 {
				trios = append(trios, tr)
			}
		}
		w.Write([]string{"scheme", "a", "b", "c", "nqos", "goal", "reached",
			"ratio_a", "ratio_b", "nonqos_norm_tput"})
		for _, sc := range schemes {
			cases, err := runner.TrioSweep(ctx, trios, goals, nQoS, sc, progress)
			if err != nil {
				return err
			}
			for _, c := range cases {
				ratioB := ""
				if nQoS == 2 {
					ratioB = fmt.Sprintf("%.4f", c.Res.Kernels[1].GoalRatio)
				}
				var nqNorm float64
				var nqCount int
				for _, k := range c.Res.Kernels {
					if !k.IsQoS {
						nqNorm += k.NormThroughput
						nqCount++
					}
				}
				if nqCount > 0 {
					nqNorm /= float64(nqCount)
				}
				w.Write([]string{
					sc.Name(), c.Trio.A, c.Trio.B, c.Trio.C,
					fmt.Sprint(nQoS),
					fmt.Sprintf("%.2f", c.QoSGoals[0]),
					fmt.Sprint(c.Res.AllReached),
					fmt.Sprintf("%.4f", c.Res.Kernels[0].GoalRatio),
					ratioB,
					fmt.Sprintf("%.4f", nqNorm),
				})
			}
			w.Flush()
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	fmt.Fprintln(os.Stderr)
	for _, m := range runner.Metrics() {
		fmt.Fprintf(os.Stderr, "sweep %-24s %4d cases in %8s (%.1f case/s, %d workers)\n",
			m.Stage, m.Cases, m.Wall.Round(time.Millisecond), m.CasesPerSec, runner.Workers())
	}
	return nil
}
