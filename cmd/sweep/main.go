// Command sweep runs pair or trio co-run studies and emits one CSV row
// per case, for offline plotting of the paper's figures. Cases fan out
// over a parallel worker pool (-workers, default one per CPU); rows are
// emitted in deterministic case order and are bit-identical to a serial
// run. Ctrl-C cancels mid-sweep.
//
// Sweeps are fault-tolerant: a crashing or erroring case is isolated and
// reported instead of aborting the study (restore the old behavior with
// -fail-fast), transient failures can be retried (-retries, with
// -retry-backoff), runaway cases can be reaped (-case-timeout), and with
// -journal every completed case is checkpointed so an interrupted sweep
// resumes (-resume) without recomputing — resumed results are
// bit-identical to an uninterrupted run.
//
// Usage:
//
//	sweep -mode pairs -schemes rollover,spart > pairs.csv
//	sweep -mode trios -nqos 2 -schemes rollover,spart -subsample 2 > trios2.csv
//	sweep -mode pairs -workers 1   # force serial execution
//	sweep -mode pairs -journal pairs.ckpt            # checkpoint as it goes
//	sweep -mode pairs -journal pairs.ckpt -resume    # pick up after a crash
//	sweep -mode pairs -schemes rollover -fit fit.json  # also emit a qosd model fit
//	sweep -mode pairs -suite openworld -schemes rollover > openworld.csv
//	sweep -mode stream -arrivals poisson,bursty -schemes rollover -window 30000 > stream.csv
//	sweep -worker http://host:9121                   # join a sweepd coordinator
//
// -suite openworld swaps the pairs grid for the open-world classes
// (latency-SLO'd LLM inference, periodic real-time detection) co-run
// against every paper benchmark. -mode stream sweeps an arrival-process
// axis instead of a workload grid: each -arrivals process is expanded
// into a seeded trace at the same mean rate, driven through a fresh
// in-process qosd admission loop, and reported as per-tenant SLO rows
// (see internal/stream; trace_hash binds each row to its exact traffic).
//
// With -worker the process becomes a distributed sweep worker: it
// fetches the sweep spec from a sweepd coordinator, executes leased
// case ranges on the local pool, and streams results back. The grid,
// scheme and output then belong to the coordinator; local grid flags
// are ignored, while -workers, -shards, -case-timeout, -retries and
// -retry-backoff still shape local execution.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/distsweep"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// options carries the parsed command line.
type options struct {
	mode        string
	nQoS        int
	schemes     string
	window      int64
	subsample   int
	goals       string
	scale       bool
	workers     int
	journalPath string
	resume      bool
	failFast    bool
	caseTimeout time.Duration
	retries     int
	backoff     time.Duration
	traceDir    string
	traceFmt    string
	pprofAddr   string
	shards      int
	fitPath     string
	workerAddr  string
	workerName  string
	suite       string
	arrivals    string
	rate        float64
	streamDur   time.Duration
	mix         int
}

func main() {
	var o options
	flag.StringVar(&o.mode, "mode", "pairs", "pairs|trios")
	flag.IntVar(&o.nQoS, "nqos", 1, "QoS kernels per trio (trios mode)")
	flag.StringVar(&o.schemes, "schemes", "rollover,spart", "comma-separated scheme list")
	flag.Int64Var(&o.window, "window", 200_000, "measurement window in cycles")
	flag.IntVar(&o.subsample, "subsample", 1, "take every k-th pair/trio")
	flag.StringVar(&o.goals, "goals", "", "comma-separated goal fractions (default: paper sweep)")
	flag.BoolVar(&o.scale, "scale56", false, "use the 56-SM configuration")
	flag.IntVar(&o.workers, "workers", 0, "parallel sweep workers (0 = one per CPU)")
	flag.StringVar(&o.journalPath, "journal", "", "checkpoint journal file (completed cases are appended)")
	flag.BoolVar(&o.resume, "resume", false, "resume from the journal, skipping already-completed cases")
	flag.BoolVar(&o.failFast, "fail-fast", false, "abort the sweep on the first failing case")
	flag.DurationVar(&o.caseTimeout, "case-timeout", 0, "per-case deadline (0 = none)")
	flag.IntVar(&o.retries, "retries", 0, "extra attempts per failing case")
	flag.DurationVar(&o.backoff, "retry-backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	flag.StringVar(&o.traceDir, "trace", "", "directory for per-case event traces (empty = tracing off)")
	flag.StringVar(&o.traceFmt, "trace-format", "jsonl", "trace encoding: jsonl|chrome")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.IntVar(&o.shards, "shards", 1, "step the SMs in this many parallel shards per run (bit-identical to -shards=1)")
	flag.StringVar(&o.fitPath, "fit", "", "distill the pair sweep into a qosd performance-model fit at this path (pairs mode, exactly one scheme)")
	flag.StringVar(&o.workerAddr, "worker", "", "run as a distributed worker against this sweepd coordinator URL")
	flag.StringVar(&o.workerName, "worker-name", "", "worker name reported to the coordinator (default sweep-<pid>)")
	flag.StringVar(&o.suite, "suite", "paper", "pair grid: paper (the 90-pair Parboil grid) | openworld (open-world classes vs every paper benchmark)")
	flag.StringVar(&o.arrivals, "arrivals", "poisson,diurnal,bursty", "comma-separated arrival processes to sweep (stream mode)")
	flag.Float64Var(&o.rate, "rate", 8, "mean arrivals per second per process (stream mode)")
	flag.DurationVar(&o.streamDur, "stream-duration", 30*time.Second, "virtual length of each generated trace (stream mode)")
	flag.IntVar(&o.mix, "mix", 3, "admitted-mix capacity of the in-process daemon (stream mode)")
	flag.Parse()

	if o.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: pprof server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseSchemes(s string) ([]core.Scheme, error) {
	var out []core.Scheme
	for _, name := range strings.Split(s, ",") {
		sc, err := core.ParseScheme(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func parseGoals(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func progress(p exp.Progress) {
	if p.Done%20 == 0 || p.Done == p.Total {
		fmt.Fprintf(os.Stderr, "\r%-30s %d/%d  %.1f case/s  ETA %-8s ",
			p.Stage, p.Done, p.Total, p.CasesPerSec, p.ETA.Round(time.Second))
	}
}

// openJournal opens (or creates) the checkpoint journal. The header hash
// binds the file to the device/window/mode; per-stage keys inside bind
// each case to the exact session config and grid. Without -resume an
// existing journal is refused rather than silently overwritten.
func openJournal(o options, cfg config.GPU) (*journal.Journal, error) {
	if o.journalPath == "" {
		if o.resume {
			return nil, errors.New("-resume requires -journal")
		}
		return nil, nil
	}
	hash, err := journal.Hash(struct {
		GPU    config.GPU
		Window int64
		Mode   string
		NQoS   int
	}{cfg, o.window, o.mode, o.nQoS})
	if err != nil {
		return nil, err
	}
	if o.resume {
		return journal.Open(o.journalPath, hash)
	}
	if _, err := os.Stat(o.journalPath); err == nil {
		return nil, fmt.Errorf("journal %s exists; pass -resume to continue it or remove it first", o.journalPath)
	}
	return journal.Create(o.journalPath, hash)
}

func faultPolicy(o options, j *journal.Journal, seed uint64) exp.FaultPolicy {
	return exp.FaultPolicy{
		FailFast:    o.failFast,
		CaseTimeout: o.caseTimeout,
		Journal:     j,
		Retry: retry.Policy{
			MaxAttempts: o.retries + 1,
			BaseDelay:   o.backoff,
			Seed:        seed,
		},
	}
}

// runWorker joins a sweepd coordinator: the spec (grid, scheme, device,
// window, seed) comes from the coordinator so every worker simulates
// identical cases; local flags only shape how this process executes
// them. The journal stays coordinator-side — a worker is stateless and
// safe to kill at any point.
func runWorker(ctx context.Context, o options) error {
	pol := retry.Policy{
		MaxAttempts: o.retries + 4,
		BaseDelay:   o.backoff,
		MaxDelay:    5 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        workloads.Seed,
	}
	spec, stage, err := distsweep.FetchSpec(ctx, nil, o.workerAddr, pol)
	if err != nil {
		return fmt.Errorf("fetch spec from %s: %w", o.workerAddr, err)
	}
	name := o.workerName
	if name == "" {
		name = fmt.Sprintf("sweep-%d", os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "sweep: worker %s joining %s: %s stage %s, %d cases\n",
		name, o.workerAddr, spec.Mode, stage, spec.Total())
	sessOpts := append(spec.SessionOptions(), core.WithShards(o.shards))
	runner, err := exp.NewRunner(o.workers,
		exp.WithSessionOptions(sessOpts...),
		exp.WithFaultPolicy(exp.FaultPolicy{
			FailFast:    o.failFast,
			CaseTimeout: o.caseTimeout,
			Retry: retry.Policy{
				MaxAttempts: o.retries + 1,
				BaseDelay:   o.backoff,
				Seed:        workloads.Seed,
			},
		}))
	if err != nil {
		return err
	}
	w, err := distsweep.NewWorker(distsweep.WorkerConfig{
		Addr:   o.workerAddr,
		Name:   name,
		Runner: runner,
		Spec:   spec,
		Retry:  pol,
		Trace:  o.traceDir != "",
		Log:    log.New(os.Stderr, "sweep: ", 0),
	})
	if err != nil {
		return err
	}
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "sweep: worker %s: %d leases, %d cases run, %d delivered, %d failed, %d dup, %d hb misses, %d degraded flushes\n",
		name, st.Leases, st.CasesRun, st.CasesDelivered, st.CasesFailed, st.Duplicates, st.HeartbeatMisses, st.DegradedFlushes)
	if st.CasesUndelivered > 0 {
		// Computed results the coordinator never acknowledged die with
		// this process; say so instead of letting the counts above imply
		// the work landed.
		fmt.Fprintf(os.Stderr, "sweep: worker %s: %d case result(s) computed but UNDELIVERED — lost with this worker\n",
			name, st.CasesUndelivered)
	}
	return err
}

func run(ctx context.Context, o options) error {
	if o.workerAddr != "" {
		return runWorker(ctx, o)
	}
	schemes, err := parseSchemes(o.schemes)
	if err != nil {
		return err
	}
	if o.suite != "paper" && o.suite != "openworld" {
		return fmt.Errorf("unknown suite %q (want paper or openworld)", o.suite)
	}
	if o.suite != "paper" && o.mode != "pairs" {
		return errors.New("-suite selects the pairs grid; it requires -mode pairs")
	}
	if o.mode == "stream" && (o.journalPath != "" || o.resume) {
		// Case checkpointing keys on grid indices; a stream drive is one
		// indivisible replay, already reproducible from (spec, seed).
		return errors.New("-journal/-resume apply to grid sweeps, not -mode stream")
	}
	if o.mode == "stream" && len(schemes) != 1 {
		return errors.New("-mode stream requires exactly one -schemes entry (stream rows carry no scheme column)")
	}
	def := exp.Goals()
	if o.mode == "trios" && o.nQoS == 2 {
		def = exp.TwoQoSGoals()
	}
	goals, err := parseGoals(o.goals, def)
	if err != nil {
		return err
	}
	cfg := config.Base()
	if o.scale {
		cfg = config.Scale56()
	}
	jnl, err := openJournal(o, cfg)
	if err != nil {
		return err
	}
	if jnl != nil {
		defer jnl.Close()
	}
	traceFmtVal, err := trace.ParseFormat(o.traceFmt)
	if err != nil {
		return err
	}
	runner, err := exp.NewRunner(o.workers,
		exp.WithSessionOptions(core.WithGPU(cfg), core.WithWindow(o.window), core.WithShards(o.shards)),
		exp.WithFaultPolicy(faultPolicy(o, jnl, workloads.Seed)),
		exp.WithTraceDir(o.traceDir, traceFmtVal))
	if err != nil {
		return err
	}
	if o.subsample < 1 {
		o.subsample = 1
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	// sweepErr collects per-scheme failures: a sweep that completed with
	// failed cases still emits its healthy rows, but the run exits
	// non-zero so scripts notice the holes.
	var failed int
	partial := func(err error) (bool, error) {
		if err == nil {
			return true, nil
		}
		var se *exp.SweepError
		if errors.As(err, &se) {
			fmt.Fprintf(os.Stderr, "\n%s\n", se.Error())
			failed += len(se.Report.Failed)
			return true, nil
		}
		return false, err
	}

	if o.fitPath != "" && (o.mode != "pairs" || len(schemes) != 1) {
		return errors.New("-fit requires -mode pairs and exactly one -schemes entry (a fit is bound to one scheme)")
	}

	switch o.mode {
	case "pairs":
		grid := workloads.Pairs()
		if o.suite == "openworld" {
			grid = workloads.OpenWorldPairs()
		}
		var pairs []workloads.Pair
		for i, p := range grid {
			if i%o.subsample == 0 {
				pairs = append(pairs, p)
			}
		}
		w.Write(exp.PairCSVHeader())
		for _, sc := range schemes {
			cases, err := runner.PairSweep(ctx, pairs, goals, sc, progress)
			if ok, err := partial(err); !ok {
				return err
			}
			if o.fitPath != "" {
				fit, ferr := exp.ModelFit(cases, sc, runner.Session())
				if ferr != nil {
					return ferr
				}
				if ferr := fit.Save(o.fitPath); ferr != nil {
					return ferr
				}
				fmt.Fprintf(os.Stderr, "sweep: wrote model fit %s (version %.12s…, %d workloads, %d pairs)\n",
					o.fitPath, fit.Version, len(fit.Isolated), len(fit.Pairs))
			}
			for _, c := range cases {
				if c.Res == nil {
					continue // failed case; reported above
				}
				w.Write(exp.PairCSVRow(c))
			}
			w.Flush()
		}
	case "trios":
		var trios []workloads.Trio
		for i, tr := range workloads.Trios() {
			if i%o.subsample == 0 {
				trios = append(trios, tr)
			}
		}
		w.Write(exp.TrioCSVHeader())
		for _, sc := range schemes {
			cases, err := runner.TrioSweep(ctx, trios, goals, o.nQoS, sc, progress)
			if ok, err := partial(err); !ok {
				return err
			}
			for _, c := range cases {
				if c.Res == nil {
					continue // failed case; reported above
				}
				w.Write(exp.TrioCSVRow(c, o.nQoS))
			}
			w.Flush()
		}
	case "stream":
		w.Write(stream.CSVHeader())
		for _, raw := range strings.Split(o.arrivals, ",") {
			proc := strings.TrimSpace(raw)
			tr, err := stream.Generate(stream.GenSpec{
				Process:    proc,
				RatePerSec: o.rate,
				DurationMs: o.streamDur.Milliseconds(),
				Seed:       workloads.Seed,
				Tenants:    stream.DefaultTenants(),
			})
			if err != nil {
				return err
			}
			// A fresh daemon per process: admission verdicts depend on the
			// admitted mix, so sharing one daemon would leak load from the
			// previous process's tail into the next process's head. The
			// evaluation runner is shared — Shutdown drains the daemon's
			// decision loop, not the worker pool.
			srv, err := server.New(server.Config{
				Runner:   runner,
				Scheme:   schemes[0],
				MaxMix:   o.mix,
				FastPath: true,
			})
			if err != nil {
				return err
			}
			d := &stream.Driver{
				Backend:  stream.ServerBackend{Server: srv},
				Registry: srv.Registry(),
				MixSlots: o.mix,
			}
			rep, runErr := d.Run(ctx, tr)
			shCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			shErr := srv.Shutdown(shCtx)
			cancel()
			if runErr != nil {
				return fmt.Errorf("drive %s: %w", proc, runErr)
			}
			if shErr != nil {
				return fmt.Errorf("shutdown after %s: %w", proc, shErr)
			}
			if err := w.WriteAll(stream.CSVRows(rep, tr.Spec)); err != nil {
				return err
			}
			w.Flush()
			fmt.Fprintf(os.Stderr, "sweep stream %-12s %4d arrivals, %d admitted, %d rejected (hash %.12s…)\n",
				proc, rep.Totals.Arrivals, rep.Totals.Admitted, rep.Totals.Rejected, rep.TraceHash)
		}
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	fmt.Fprintln(os.Stderr)
	for _, m := range runner.Metrics() {
		fmt.Fprintf(os.Stderr, "sweep %-24s %4d cases in %8s (%.1f case/s, %d workers)\n",
			m.Stage, m.Cases, m.Wall.Round(time.Millisecond), m.CasesPerSec, runner.Workers())
	}
	for _, rep := range runner.Reports() {
		if rep.Skipped > 0 || rep.Retried > 0 || len(rep.Failed) > 0 {
			fmt.Fprintf(os.Stderr, "sweep %-24s %s\n", rep.Stage, rep.Summary())
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d case(s) failed; completed rows were emitted", failed)
	}
	return nil
}
