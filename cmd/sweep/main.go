// Command sweep runs pair or trio co-run studies and emits one CSV row
// per case, for offline plotting of the paper's figures.
//
// Usage:
//
//	sweep -mode pairs -schemes rollover,spart > pairs.csv
//	sweep -mode trios -nqos 2 -schemes rollover,spart -subsample 2 > trios2.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workloads"
)

func main() {
	var (
		mode      = flag.String("mode", "pairs", "pairs|trios")
		nQoS      = flag.Int("nqos", 1, "QoS kernels per trio (trios mode)")
		schemes   = flag.String("schemes", "rollover,spart", "comma-separated scheme list")
		window    = flag.Int64("window", 200_000, "measurement window in cycles")
		subsample = flag.Int("subsample", 1, "take every k-th pair/trio")
		goalsFlag = flag.String("goals", "", "comma-separated goal fractions (default: paper sweep)")
		scale     = flag.Bool("scale56", false, "use the 56-SM configuration")
	)
	flag.Parse()
	if err := run(*mode, *nQoS, *schemes, *window, *subsample, *goalsFlag, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseSchemes(s string) ([]core.Scheme, error) {
	table := map[string]core.Scheme{
		"none": core.SchemeNone, "naive": core.SchemeNaive,
		"naive-history": core.SchemeNaiveHistory, "elastic": core.SchemeElastic,
		"rollover": core.SchemeRollover, "rollover-time": core.SchemeRolloverTime,
		"spart": core.SchemeSpart,
	}
	var out []core.Scheme
	for _, name := range strings.Split(s, ",") {
		sc, ok := table[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

func parseGoals(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(mode string, nQoS int, schemeList string, window int64, subsample int, goalsFlag string, scale bool) error {
	schemes, err := parseSchemes(schemeList)
	if err != nil {
		return err
	}
	def := exp.Goals()
	if mode == "trios" && nQoS == 2 {
		def = exp.TwoQoSGoals()
	}
	goals, err := parseGoals(goalsFlag, def)
	if err != nil {
		return err
	}
	cfg := config.Base()
	if scale {
		cfg = config.Scale56()
	}
	session, err := core.NewSession(core.Config{GPU: cfg, WindowCycles: window})
	if err != nil {
		return err
	}
	if subsample < 1 {
		subsample = 1
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	progress := func(stage string) func(int, int) {
		return func(done, total int) {
			if done%20 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%-30s %d/%d ", stage, done, total)
			}
		}
	}

	switch mode {
	case "pairs":
		var pairs []workloads.Pair
		for i, p := range workloads.Pairs() {
			if i%subsample == 0 {
				pairs = append(pairs, p)
			}
		}
		w.Write([]string{"scheme", "qos", "nonqos", "class", "goal", "reached",
			"qos_ipc", "qos_goal_ipc", "goal_ratio", "nonqos_norm_tput", "instr_per_watt"})
		for _, sc := range schemes {
			cases, err := exp.PairSweep(session, pairs, goals, sc, progress(sc.String()))
			if err != nil {
				return err
			}
			for _, c := range cases {
				q, nq := c.QoSKernel(), c.NonQoSKernel()
				cls, _ := workloads.PairClass(c.Pair.QoS, c.Pair.NonQoS)
				w.Write([]string{
					sc.String(), c.Pair.QoS, c.Pair.NonQoS, cls,
					fmt.Sprintf("%.2f", c.Goal),
					fmt.Sprint(c.Res.AllReached),
					fmt.Sprintf("%.2f", q.IPC),
					fmt.Sprintf("%.2f", q.GoalIPC),
					fmt.Sprintf("%.4f", q.GoalRatio),
					fmt.Sprintf("%.4f", nq.NormThroughput),
					fmt.Sprintf("%.3e", c.Res.Power.InstrPerWatt),
				})
			}
			w.Flush()
		}
	case "trios":
		var trios []workloads.Trio
		for i, tr := range workloads.Trios() {
			if i%subsample == 0 {
				trios = append(trios, tr)
			}
		}
		w.Write([]string{"scheme", "a", "b", "c", "nqos", "goal", "reached",
			"ratio_a", "ratio_b", "nonqos_norm_tput"})
		for _, sc := range schemes {
			cases, err := exp.TrioSweep(session, trios, goals, nQoS, sc, progress(sc.String()))
			if err != nil {
				return err
			}
			for _, c := range cases {
				ratioB := ""
				if nQoS == 2 {
					ratioB = fmt.Sprintf("%.4f", c.Res.Kernels[1].GoalRatio)
				}
				var nqNorm float64
				var nqCount int
				for _, k := range c.Res.Kernels {
					if !k.IsQoS {
						nqNorm += k.NormThroughput
						nqCount++
					}
				}
				if nqCount > 0 {
					nqNorm /= float64(nqCount)
				}
				w.Write([]string{
					sc.String(), c.Trio.A, c.Trio.B, c.Trio.C,
					fmt.Sprint(nQoS),
					fmt.Sprintf("%.2f", c.QoSGoals[0]),
					fmt.Sprint(c.Res.AllReached),
					fmt.Sprintf("%.4f", c.Res.Kernels[0].GoalRatio),
					ratioB,
					fmt.Sprintf("%.4f", nqNorm),
				})
			}
			w.Flush()
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
