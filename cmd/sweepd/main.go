// Command sweepd coordinates a distributed sweep: it owns the case grid
// and the crash-safe checkpoint journal, and leases contiguous case
// ranges over HTTP to `sweep -worker` processes, which execute them and
// stream results back. The journal format and stage keys are identical
// to a local `sweep -journal` run, so a sweep can move freely between
// local and distributed execution (and between coordinator restarts)
// without re-running completed cases.
//
// Fault tolerance: a worker that stops heartbeating loses its lease and
// the unfinished cases are re-issued; committed cases are never
// re-leased. Result delivery is idempotent by case index, so workers
// that outlive their lease (network partition, slow batch) can still
// deliver. The merged CSV is written in deterministic grid order —
// bit-identical to a serial in-process run regardless of how many
// workers took part or how they failed.
//
// SIGTERM/SIGINT drains gracefully: lease grants stop, in-flight result
// deliveries are still accepted, then the listener closes. The journal
// keeps the completed prefix; rerun sweepd with -resume to continue.
//
// Usage:
//
//	sweepd -addr :9121 -mode pairs -scheme rollover -journal pairs.ckpt
//	sweep -worker http://host:9121       # on each worker machine
//	curl -s host:9121/v1/state           # progress
//
// When every case is committed (or permanently failed) the coordinator
// writes the merged CSV to -out (default stdout) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/distsweep"
	"repro/internal/exp"
	"repro/internal/schema"
	"repro/internal/workloads"
)

// options carries the parsed command line.
type options struct {
	addr        string
	mode        string
	nQoS        int
	scheme      string
	window      int64
	subsample   int
	goals       string
	scale       bool
	journalPath string
	resume      bool
	leaseCases  int
	leaseTTL    time.Duration
	maxLeases   int
	drainWait   time.Duration
	outPath     string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "localhost:9121", "listen address")
	flag.StringVar(&o.mode, "mode", "pairs", "pairs|trios")
	flag.IntVar(&o.nQoS, "nqos", 1, "QoS kernels per trio (trios mode)")
	flag.StringVar(&o.scheme, "scheme", "rollover", "QoS scheme (one per coordinator; run several for several schemes)")
	flag.Int64Var(&o.window, "window", 200_000, "measurement window in cycles")
	flag.IntVar(&o.subsample, "subsample", 1, "take every k-th pair/trio")
	flag.StringVar(&o.goals, "goals", "", "comma-separated goal fractions (default: paper sweep)")
	flag.BoolVar(&o.scale, "scale56", false, "use the 56-SM configuration")
	flag.StringVar(&o.journalPath, "journal", "", "checkpoint journal file (required for durability)")
	flag.BoolVar(&o.resume, "resume", false, "resume a journal that already has results for this grid")
	flag.IntVar(&o.leaseCases, "lease-cases", distsweep.DefaultLeaseCases, "cases per lease")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", distsweep.DefaultLeaseTTL, "heartbeat deadline before a lease is re-issued")
	flag.IntVar(&o.maxLeases, "max-leases", distsweep.DefaultMaxLeases, "outstanding lease bound before 429")
	flag.DurationVar(&o.drainWait, "drain-wait", 30*time.Second, "graceful drain budget on SIGTERM")
	flag.StringVar(&o.outPath, "out", "", "merged CSV path on completion (default stdout)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func parseGoals(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// buildSpec assembles the sweep spec from the same grid sources the
// local front end uses, so a sweepd grid is the sweep grid.
func buildSpec(o options) (distsweep.Spec, error) {
	def := exp.Goals()
	if o.mode == distsweep.ModeTrios && o.nQoS == 2 {
		def = exp.TwoQoSGoals()
	}
	goals, err := parseGoals(o.goals, def)
	if err != nil {
		return distsweep.Spec{}, err
	}
	cfg := config.Base()
	if o.scale {
		cfg = config.Scale56()
	}
	if o.subsample < 1 {
		o.subsample = 1
	}
	sp := distsweep.Spec{
		Mode:   o.mode,
		Goals:  schema.FracGoals(goals),
		NQoS:   o.nQoS,
		Scheme: o.scheme,
		GPU:    cfg,
		Window: o.window,
		Seed:   workloads.Seed,
	}
	switch o.mode {
	case distsweep.ModePairs:
		for i, p := range workloads.Pairs() {
			if i%o.subsample == 0 {
				sp.Pairs = append(sp.Pairs, p)
			}
		}
	case distsweep.ModeTrios:
		for i, t := range workloads.Trios() {
			if i%o.subsample == 0 {
				sp.Trios = append(sp.Trios, t)
			}
		}
	}
	return sp, sp.Validate()
}

func run(o options) error {
	if _, err := core.ParseScheme(o.scheme); err != nil {
		return err
	}
	spec, err := buildSpec(o)
	if err != nil {
		return err
	}
	coord, err := distsweep.New(distsweep.Config{
		Spec:       spec,
		Journal:    o.journalPath,
		Resume:     o.resume,
		LeaseCases: o.leaseCases,
		LeaseTTL:   o.leaseTTL,
		MaxLeases:  o.maxLeases,
		Log:        log.New(os.Stderr, "sweepd: ", 0),
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	hs := &http.Server{Addr: o.addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sweepd: serving on %s (%s, scheme %s, %d cases, lease %d cases / %s ttl)\n",
			o.addr, o.mode, o.scheme, spec.Total(), o.leaseCases, o.leaseTTL)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	finished := false
	select {
	case err := <-errCh:
		return err
	case <-coord.Done():
		finished = true
	case <-ctx.Done():
	}

	if !finished {
		fmt.Fprintln(os.Stderr, "sweepd: draining (in-flight results still accepted; journal keeps progress)")
	} else {
		// Linger a few worker poll intervals with the listener up so
		// workers observe Done on their next lease request and exit
		// cleanly, instead of finding a closed port and burning their
		// idle-poll budget on a sweep that actually finished.
		time.Sleep(3 * distsweep.DefaultPollInterval)
	}
	coord.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	if !finished {
		st := coord.State()
		fmt.Fprintf(os.Stderr, "sweepd: drained at %d/%d committed; rerun with -resume to continue\n", st.Committed, st.Total)
		return nil
	}

	out := os.Stdout
	if o.outPath != "" {
		f, err := os.Create(o.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := coord.WriteCSV(out); err != nil {
		return err
	}
	if failed := coord.FailedCases(); len(failed) > 0 {
		for i, msg := range failed {
			fmt.Fprintf(os.Stderr, "sweepd: case %d (%s) failed permanently: %s\n", i, spec.Describe(i), msg)
		}
		return fmt.Errorf("%d case(s) failed; completed rows were emitted", len(failed))
	}
	st := coord.State()
	fmt.Fprintf(os.Stderr, "sweepd: complete: %d cases, %d leases expired, %d orphan reports\n",
		st.Total, st.Expired, st.Orphans)
	return nil
}
