// Command calibrate characterizes the workload suite on the simulated
// GPU: isolated IPC, memory traffic, cache behaviour and TLP sensitivity
// (IPC at fractions of full thread-block residency). It is the tool used
// to keep the synthetic Parboil-like profiles in realistic ranges when
// the workload models are tuned (see DESIGN.md Section 2).
//
// Usage:
//
//	calibrate                 # characterize the whole suite
//	calibrate -w sgemm,lbm    # a subset
//	calibrate -tlp            # add the TLP sensitivity sweep
//	calibrate -fit iso.json   # also write an isolated-IPC qosd model fit
//
// A -fit file carries isolated IPCs only (no pairwise contention data),
// bound to the default device at -window: a qosd loading it can decide
// single-kernel mixes analytically while multi-kernel mixes still
// simulate (use `sweep -fit` for pairwise coverage).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/perfmodel"
	"repro/internal/workloads"
)

func main() {
	var (
		list    = flag.String("w", "", "comma-separated workloads (default: all)")
		window  = flag.Int64("window", 200_000, "measurement window in cycles")
		tlp     = flag.Bool("tlp", false, "include the TLP-sensitivity sweep")
		timeout = flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none)")
		shards  = flag.Int("shards", 1, "step the SMs in this many parallel shards (bit-identical to -shards=1)")
		fit     = flag.String("fit", "", "write an isolated-IPC qosd model fit to this path")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *list, *window, *tlp, *shards, *fit); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func selected(list string) ([]string, error) {
	if list == "" {
		return workloads.Names(), nil
	}
	var names []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if _, err := workloads.ByName(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	return names, nil
}

// measure runs the named workload isolated, optionally with a uniform
// per-SM TB cap, and returns the GPU for stat extraction.
func measure(ctx context.Context, name string, window int64, cap, shards int) (*gpu.GPU, error) {
	k, err := workloads.Kernel(name, 0)
	if err != nil {
		return nil, err
	}
	g, err := gpu.New(config.Base(), []*kern.Kernel{k})
	if err != nil {
		return nil, err
	}
	g.SetShards(shards)
	if cap > 0 {
		for _, s := range g.SMs {
			s.SetTBCap(0, cap)
		}
	}
	if err := g.RunCtx(ctx, window); err != nil {
		return nil, err
	}
	return g, nil
}

// writeFit measures each workload's isolated IPC on a fresh session
// (the same device/window/seed a default qosd runs under) and saves a
// pairs-free model fit.
func writeFit(ctx context.Context, names []string, window int64, path string) error {
	sess, err := core.NewSession(core.WithWindow(window))
	if err != nil {
		return err
	}
	cfgHash, err := perfmodel.ConfigHash(sess.Config(), sess.Seed())
	if err != nil {
		return err
	}
	f := &perfmodel.Fit{
		Schema:     perfmodel.FitSchema,
		ConfigHash: cfgHash,
		Isolated:   make(map[string]float64, len(names)),
		Pairs:      map[string][]perfmodel.PairPoint{},
	}
	for _, name := range names {
		ipc, err := sess.IsolatedIPC(ctx, core.KernelSpec{Workload: name})
		if err != nil {
			return err
		}
		f.Isolated[name] = ipc
	}
	if err := f.Save(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calibrate: wrote model fit %s (version %.12s…, %d workloads)\n",
		path, f.Version, len(f.Isolated))
	return nil
}

func run(ctx context.Context, list string, window int64, tlp bool, shards int, fit string) error {
	names, err := selected(list)
	if err != nil {
		return err
	}
	if fit != "" {
		if err := writeFit(ctx, names, window, fit); err != nil {
			return err
		}
	}
	fmt.Printf("%-14s %-3s %9s %10s %8s %8s %9s %8s\n",
		"workload", "cls", "IPC", "lines/cyc", "L1hit", "L2hit", "TBs", "launches")
	for _, name := range names {
		g, err := measure(ctx, name, window, 0, shards)
		if err != nil {
			return err
		}
		p, _ := workloads.ByName(name)
		st := g.Stats[0]
		l2 := g.Mem.L2Stats()
		fmt.Printf("%-14s %-3s %9.1f %10.2f %7.1f%% %7.1f%% %9d %8d\n",
			name, p.Class, g.IPC(0),
			float64(st.MemTxns)/float64(window),
			100*(1-st.L1MissRate()), 100*l2.HitRate(),
			g.TotalResidentTBs(0), st.Launches)
	}

	if !tlp {
		return nil
	}
	fmt.Printf("\nTLP sensitivity (IPC at a per-SM TB cap, normalized to uncapped):\n")
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "workload", "cap=2", "cap=4", "cap=8", "full")
	for _, name := range names {
		full, err := measure(ctx, name, window, 0, shards)
		if err != nil {
			return err
		}
		base := full.IPC(0)
		fmt.Printf("%-14s", name)
		for _, cap := range []int{2, 4, 8} {
			g, err := measure(ctx, name, window, cap, shards)
			if err != nil {
				return err
			}
			fmt.Printf(" %7.2f ", g.IPC(0)/base)
		}
		fmt.Printf(" %7.2f\n", 1.0)
	}
	return nil
}
