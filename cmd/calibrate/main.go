// Command calibrate characterizes the workload suite on the simulated
// GPU: isolated IPC, memory traffic, cache behaviour and TLP sensitivity
// (IPC at fractions of full thread-block residency). It is the tool used
// to keep the synthetic Parboil-like profiles in realistic ranges when
// the workload models are tuned (see DESIGN.md Section 2).
//
// Usage:
//
//	calibrate                 # characterize the whole suite
//	calibrate -w sgemm,lbm    # a subset
//	calibrate -tlp            # add the TLP sensitivity sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/workloads"
)

func main() {
	var (
		list    = flag.String("w", "", "comma-separated workloads (default: all)")
		window  = flag.Int64("window", 200_000, "measurement window in cycles")
		tlp     = flag.Bool("tlp", false, "include the TLP-sensitivity sweep")
		timeout = flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none)")
		shards  = flag.Int("shards", 1, "step the SMs in this many parallel shards (bit-identical to -shards=1)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *list, *window, *tlp, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func selected(list string) ([]string, error) {
	if list == "" {
		return workloads.Names(), nil
	}
	var names []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if _, err := workloads.ByName(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	return names, nil
}

// measure runs the named workload isolated, optionally with a uniform
// per-SM TB cap, and returns the GPU for stat extraction.
func measure(ctx context.Context, name string, window int64, cap, shards int) (*gpu.GPU, error) {
	k, err := workloads.Kernel(name, 0)
	if err != nil {
		return nil, err
	}
	g, err := gpu.New(config.Base(), []*kern.Kernel{k})
	if err != nil {
		return nil, err
	}
	g.SetShards(shards)
	if cap > 0 {
		for _, s := range g.SMs {
			s.SetTBCap(0, cap)
		}
	}
	if err := g.RunCtx(ctx, window); err != nil {
		return nil, err
	}
	return g, nil
}

func run(ctx context.Context, list string, window int64, tlp bool, shards int) error {
	names, err := selected(list)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-3s %9s %10s %8s %8s %9s %8s\n",
		"workload", "cls", "IPC", "lines/cyc", "L1hit", "L2hit", "TBs", "launches")
	for _, name := range names {
		g, err := measure(ctx, name, window, 0, shards)
		if err != nil {
			return err
		}
		p, _ := workloads.ByName(name)
		st := g.Stats[0]
		l2 := g.Mem.L2Stats()
		fmt.Printf("%-14s %-3s %9.1f %10.2f %7.1f%% %7.1f%% %9d %8d\n",
			name, p.Class, g.IPC(0),
			float64(st.MemTxns)/float64(window),
			100*(1-st.L1MissRate()), 100*l2.HitRate(),
			g.TotalResidentTBs(0), st.Launches)
	}

	if !tlp {
		return nil
	}
	fmt.Printf("\nTLP sensitivity (IPC at a per-SM TB cap, normalized to uncapped):\n")
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "workload", "cap=2", "cap=4", "cap=8", "full")
	for _, name := range names {
		full, err := measure(ctx, name, window, 0, shards)
		if err != nil {
			return err
		}
		base := full.IPC(0)
		fmt.Printf("%-14s", name)
		for _, cap := range []int{2, 4, 8} {
			g, err := measure(ctx, name, window, cap, shards)
			if err != nil {
				return err
			}
			fmt.Printf(" %7.2f ", g.IPC(0)/base)
		}
		fmt.Printf(" %7.2f\n", 1.0)
	}
	return nil
}
