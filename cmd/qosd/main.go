// Command qosd serves the QoS simulator as an admission-control daemon.
// Clients POST kernel specs with QoS goals (fractional, absolute IPC, or
// application deadlines) to /v1/jobs; the daemon runs a what-if co-run
// of the currently admitted mix plus the candidate on a parallel worker
// pool and admits the kernel only when every QoS goal of the resulting
// mix is predicted to hold. Admitted jobs occupy a mix slot until
// released with DELETE /v1/jobs/{id}.
//
// SIGTERM/SIGINT drains gracefully: new submissions get 503, queued jobs
// still receive verdicts, then the listener closes. With -journal every
// decision is logged crash-safely and a restarted daemon re-admits the
// mix it had accepted.
//
// Usage:
//
//	qosd -addr :8715
//	qosd -addr :8715 -scheme rollover -workers 4 -mix 3 -journal qosd.log
//
//	curl -s localhost:8715/v1/jobs -d '{"kernel":{"workload":"sgemm","goal_frac":0.95}}'
//	curl -s 'localhost:8715/v1/jobs/job-000001?wait=1'
//	curl -N localhost:8715/v1/jobs/job-000001/events
//	curl -s -X DELETE localhost:8715/v1/jobs/job-000001
//	curl -s localhost:8715/v1/verdicts/stats
//	curl -s localhost:8715/metrics
//
// The tiered fast path (-fast-path, on by default) answers repeat mixes
// from an exact verdict cache and, when -model points at a fit produced
// by `sweep -fit` under this exact device/window/seed/scheme, decides
// covered mixes analytically — falling back to full simulation whenever
// a predicted goal ratio lands within -uncertainty of its boundary.
//
// With -fleet the daemon additionally serves the /v2 fractional-GPU
// API: a registry of N simulated nodes (comma-separated device names,
// e.g. -fleet base,base,scale56) behind a deterministic bin-packing
// placement scheduler with per-node tiered admission and a
// repartitioning fallback:
//
//	qosd -addr :8715 -fleet base,base -fleet-journal fleetdir
//	curl -s localhost:8715/v2/jobs -d '{"workload":"sgemm","gpu_fraction":0.5,"goal":0.5}'
//	curl -s localhost:8715/v2/nodes
//	curl -s localhost:8715/v2/placements
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/perfmodel"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/workloads"
)

// options carries the parsed command line.
type options struct {
	addr        string
	schemeName  string
	window      int64
	scale       bool
	workers     int
	mix         int
	queue       int
	jobTimeout  time.Duration
	retries     int
	journalPath string
	drainWait   time.Duration
	fastPath    bool
	modelPath   string
	uncertainty float64
	cacheSize   int
	stallAfter  time.Duration
	fleetNodes  string
	fleetJnlDir string
	fleetMix    int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "localhost:8715", "listen address")
	flag.StringVar(&o.schemeName, "scheme", "rollover", "QoS scheme evaluations run under")
	flag.Int64Var(&o.window, "window", 200_000, "measurement window in cycles per what-if run")
	flag.BoolVar(&o.scale, "scale56", false, "use the 56-SM configuration")
	flag.IntVar(&o.workers, "workers", 0, "evaluation worker pool size (0 = one per CPU)")
	flag.IntVar(&o.mix, "mix", 3, "max concurrently admitted kernels")
	flag.IntVar(&o.queue, "queue", 16, "max queued admission decisions before 429")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 2*time.Minute, "per-evaluation deadline (0 = none)")
	flag.IntVar(&o.retries, "retries", 1, "extra attempts per failing evaluation")
	flag.StringVar(&o.journalPath, "journal", "", "crash-safe job log (restores the admitted mix on restart)")
	flag.DurationVar(&o.drainWait, "drain-wait", 30*time.Second, "graceful drain budget on SIGTERM")
	flag.BoolVar(&o.fastPath, "fast-path", true, "enable the tiered decision path (verdict cache + model) in front of simulation")
	flag.StringVar(&o.modelPath, "model", "", "analytic performance-model fit (from `sweep -fit`); requires -fast-path")
	flag.Float64Var(&o.uncertainty, "uncertainty", server.DefaultUncertaintyBand, "model trust margin: goal ratios within ±band of 1.0 escape to simulation")
	flag.IntVar(&o.cacheSize, "verdict-cache", server.DefaultVerdictCacheSize, "exact verdict cache capacity")
	flag.DurationVar(&o.stallAfter, "stall-after", server.DefaultStallAfter, "decision-loop liveness threshold: /healthz reports decision_loop_stalled (503) when one decision is in flight longer than this")
	flag.StringVar(&o.fleetNodes, "fleet", "", "serve the /v2 fleet API over these nodes: comma-separated device names (base|scale56), e.g. base,base,scale56")
	flag.StringVar(&o.fleetJnlDir, "fleet-journal", "", "fleet journal directory (per-node decision journals + placement journal); requires -fleet")
	flag.IntVar(&o.fleetMix, "fleet-mix", 0, "max concurrently placed kernels per fleet node (0 = fleet default)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "qosd:", err)
		os.Exit(1)
	}
}

// buildFleet assembles the optional /v2 fleet from the -fleet node
// list. Each comma-separated token names a device configuration.
func buildFleet(o options, scheme core.Scheme) (*fleet.Fleet, error) {
	if o.fleetNodes == "" {
		if o.fleetJnlDir != "" {
			return nil, errors.New("-fleet-journal requires -fleet")
		}
		return nil, nil
	}
	var nodes []fleet.NodeSpec
	for _, tok := range strings.Split(o.fleetNodes, ",") {
		name := strings.ToLower(strings.TrimSpace(tok))
		switch name {
		case "base":
			nodes = append(nodes, fleet.NodeSpec{Name: name, GPU: config.Base()})
		case "scale56":
			nodes = append(nodes, fleet.NodeSpec{Name: name, GPU: config.Scale56()})
		default:
			return nil, fmt.Errorf("-fleet: unknown device %q (want base or scale56)", tok)
		}
	}
	return fleet.New(fleet.Config{
		Nodes:            nodes,
		Scheme:           scheme,
		Window:           o.window,
		Seed:             workloads.Seed,
		MaxMixPerNode:    o.fleetMix,
		QueueDepth:       o.queue,
		FastPath:         o.fastPath,
		UncertaintyBand:  o.uncertainty,
		VerdictCacheSize: o.cacheSize,
		JournalDir:       o.fleetJnlDir,
	})
}

func run(o options) error {
	scheme, err := core.ParseScheme(o.schemeName)
	if err != nil {
		return err
	}
	cfg := config.Base()
	if o.scale {
		cfg = config.Scale56()
	}
	runner, err := exp.NewRunner(o.workers,
		exp.WithSessionOptions(core.WithGPU(cfg), core.WithWindow(o.window)),
		exp.WithFaultPolicy(exp.FaultPolicy{
			CaseTimeout: o.jobTimeout,
			Retry: retry.Policy{
				MaxAttempts: o.retries + 1,
				BaseDelay:   100 * time.Millisecond,
				Seed:        workloads.Seed,
			},
		}))
	if err != nil {
		return err
	}
	var model *perfmodel.Model
	if o.modelPath != "" {
		model, err = perfmodel.Load(o.modelPath)
		if err != nil {
			return err
		}
	}
	fl, err := buildFleet(o, scheme)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Runner:           runner,
		Scheme:           scheme,
		MaxMix:           o.mix,
		QueueDepth:       o.queue,
		JournalPath:      o.journalPath,
		FastPath:         o.fastPath,
		Model:            model,
		UncertaintyBand:  o.uncertainty,
		VerdictCacheSize: o.cacheSize,
		StallAfter:       o.stallAfter,
		Fleet:            fl,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fast := "off"
		if o.fastPath {
			fast = "cache"
			if model != nil {
				fast = "cache+model"
			}
		}
		fleetInfo := ""
		if fl != nil {
			fleetInfo = fmt.Sprintf(", fleet %d nodes", len(fl.Nodes()))
		}
		fmt.Fprintf(os.Stderr, "qosd: serving on %s (scheme %s, %d workers, mix %d, fast path %s%s)\n",
			o.addr, scheme.Name(), runner.Workers(), o.mix, fast, fleetInfo)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "qosd: draining (queued jobs still get verdicts)")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	derr := srv.Shutdown(drainCtx)
	herr := hs.Shutdown(drainCtx)
	if derr != nil {
		return fmt.Errorf("drain: %w", derr)
	}
	if herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		return herr
	}
	fmt.Fprintln(os.Stderr, "qosd: drained")
	return nil
}
