// Command gpusim runs a single isolated or shared simulation and prints
// detailed per-kernel statistics. It is the low-level inspection tool;
// cmd/qossim regenerates the paper's figures and cmd/sweep produces CSVs.
//
// Usage:
//
//	gpusim -kernels sgemm                        # isolated run
//	gpusim -kernels sgemm:0.8,lbm -scheme rollover
//	gpusim -kernels mri-q:0.5,lbm:0.4,sad -scheme spart -window 400000
//
// Each kernel is NAME[:GOALFRAC]; a goal fraction marks it as a QoS
// kernel with that share of its isolated IPC as the target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		kernels  = flag.String("kernels", "sgemm:0.8,lbm", "comma-separated NAME[:GOALFRAC] list")
		scheme   = flag.String("scheme", "rollover", "none|naive|naive-history|elastic|rollover|rollover-time|spart|fair")
		window   = flag.Int64("window", 200_000, "measurement window in cycles")
		scale    = flag.Bool("scale56", false, "use the 56-SM configuration (Section 4.6)")
		list     = flag.Bool("list", false, "list available workloads and exit")
		timeout  = flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none)")
		tracePth = flag.String("trace", "", "write an event trace of the co-run to this file")
		traceFmt = flag.String("trace-format", "jsonl", "trace encoding: jsonl|chrome")
		shards   = flag.Int("shards", 1, "step the SMs in this many parallel shards (results are bit-identical to -shards=1)")
	)
	flag.Parse()

	if *list {
		for _, p := range workloads.Profiles() {
			fmt.Printf("%-14s %s\n", p.Name, p.Class)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *kernels, *scheme, *window, *scale, *tracePth, *traceFmt, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
}

func parseSpecs(s string) ([]core.KernelSpec, error) {
	var specs []core.KernelSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, goal, hasGoal := strings.Cut(part, ":")
		spec := core.KernelSpec{Workload: name}
		if hasGoal {
			frac, err := strconv.ParseFloat(goal, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %q", core.ErrBadGoal, part)
			}
			spec.GoalFrac = frac
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no kernels given")
	}
	return specs, nil
}

func run(ctx context.Context, kernels, schemeName string, window int64, scale bool, tracePath, traceFormat string, shards int) error {
	specs, err := parseSpecs(kernels)
	if err != nil {
		return err
	}
	scheme, err := core.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	traceFmtVal, err := trace.ParseFormat(traceFormat)
	if err != nil {
		return err
	}
	cfg := config.Base()
	if scale {
		cfg = config.Scale56()
	}
	session, err := core.NewSession(core.WithGPU(cfg), core.WithWindow(window), core.WithShards(shards))
	if err != nil {
		return err
	}

	hasQoS := false
	for _, sp := range specs {
		if sp.GoalFrac > 0 || sp.GoalIPC > 0 {
			hasQoS = true
		}
	}
	if len(specs) == 1 && !hasQoS {
		ipc, err := session.IsolatedIPC(ctx, specs[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s isolated: %.1f IPC over %d cycles on %d SMs\n",
			specs[0].Workload, ipc, window, cfg.NumSMs)
		return nil
	}
	if !hasQoS && scheme != core.SchemeNone && scheme != core.SchemeFair {
		return fmt.Errorf("scheme %v needs at least one kernel with a goal (NAME:FRAC)", scheme)
	}

	var tr *trace.Tracer
	if tracePath != "" {
		tr = trace.New(trace.DefaultRingSize)
	}
	res, err := session.RunTraced(ctx, specs, scheme, tr)
	if err != nil {
		return err
	}
	if tracePath != "" {
		if err := trace.WriteFile(tracePath, tr, traceFmtVal); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) -> %s\n",
			tr.Len(), tr.Dropped(), tracePath)
	}
	fmt.Printf("scheme %v, %d SMs, %d cycles\n\n", res.Scheme, cfg.NumSMs, res.Cycles)
	fmt.Printf("%-14s %-5s %10s %10s %10s %8s %9s\n",
		"kernel", "QoS", "IPC", "isolated", "goal", "reached", "norm-tput")
	for _, k := range res.Kernels {
		goal, reached := "-", "-"
		if k.IsQoS {
			goal = fmt.Sprintf("%.1f", k.GoalIPC)
			reached = fmt.Sprint(k.Reached)
		}
		fmt.Printf("%-14s %-5v %10.1f %10.1f %10s %8s %8.1f%%\n",
			k.Name, k.IsQoS, k.IPC, k.IsolatedIPC, goal, reached, 100*k.NormThroughput)
	}
	fmt.Printf("\nper-kernel detail:\n")
	for _, k := range res.Kernels {
		st := k.Stats
		fmt.Printf("  %-14s warps:%d l1miss:%4.1f%% txns:%d TBs:%d/%d preempted:%d launches:%d throttled:%d\n",
			k.Name, st.WarpInstrs, 100*st.L1MissRate(), st.MemTxns,
			st.TBsCompleted, st.TBsDispatched, st.TBsPreempted, st.Launches, st.ThrottledCycles)
	}
	fmt.Printf("\ntotal %.1f IPC | %.1f W avg | %.2e instr/J\n",
		res.TotalIPC, res.Power.AvgPowerW, res.Power.InstrPerJoule)
	return nil
}
