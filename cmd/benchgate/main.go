// Command benchgate records and enforces the simulator-core performance
// baseline. It reads `go test -bench -benchmem` output on stdin (only
// benchmarks reporting a cycles/s metric are gated) and either writes the
// committed baseline or compares against it:
//
//	go test -bench 'BenchmarkSimulatorCycles' -benchmem -run '^$' . \
//	    | benchgate -update -o BENCH_core.json      # record baseline
//	go test -bench 'BenchmarkSimulatorCycles' -benchmem -run '^$' . \
//	    | benchgate -baseline BENCH_core.json       # gate (exit 1 on fail)
//
// Three kinds of benchmark are gated. Throughput benchmarks (cycles/s,
// or decisions/s for the stream-admission gate) fail when throughput
// drops more than -tol (default 10%, override with BENCHGATE_TOL) below
// baseline or allocs/op rises above it. Latency
// benchmarks (p50-ns, speedup-x — e.g. BenchmarkAdmission) fail when the
// median latency rises more than -lat-tol (default 50%, override with
// BENCHGATE_LAT_TOL) above baseline or the speedup falls below the
// absolute benchgate.MinSpeedupX floor. Overhead benchmarks
// (overhead-pct — e.g. BenchmarkDistSweepOverhead) fail when the
// slowdown over their in-run reference exceeds the absolute
// benchgate.MaxOverheadPct ceiling. BENCHGATE_HANDICAP=0.6,
// BENCHGATE_LAT_HANDICAP=4 and BENCHGATE_OVERHEAD_HANDICAP=10 inject
// synthetic regressions so every tripwire can be tested end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"repro/internal/benchgate"
)

func main() {
	var (
		update   = flag.Bool("update", false, "write the parsed run as the new baseline")
		out      = flag.String("o", "BENCH_core.json", "baseline path for -update")
		baseline = flag.String("baseline", "", "compare stdin against this baseline and exit 1 on regression")
		tol      = flag.Float64("tol", 0.10, "allowed fractional throughput drop")
		latTol   = flag.Float64("lat-tol", 0.50, "allowed fractional p50 latency rise")
		window   = flag.Int64("window", 50_000, "simulated cycles per benchmark op (recorded in the baseline)")
	)
	flag.Parse()
	if err := run(*update, *out, *baseline, *tol, *latTol, *window); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func envFloat(name string, def float64) (float64, error) {
	s := os.Getenv(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", name, s, err)
	}
	return v, nil
}

func run(update bool, out, baseline string, tol, latTol float64, window int64) error {
	if update == (baseline != "") {
		return fmt.Errorf("use exactly one of -update or -baseline")
	}
	entries, err := benchgate.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no gated benchmarks on stdin (need a cycles/s, p50-ns or overhead-pct metric; was -bench filtered correctly?)")
	}
	cur := &benchgate.File{
		Schema:       benchgate.Schema,
		Go:           runtime.Version(),
		WindowCycles: window,
		Benchmarks:   entries,
	}
	if update {
		if err := cur.Write(out); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", out, len(entries))
		return nil
	}

	base, err := benchgate.Load(baseline)
	if err != nil {
		return err
	}
	if tol, err = envFloat("BENCHGATE_TOL", tol); err != nil {
		return err
	}
	if latTol, err = envFloat("BENCHGATE_LAT_TOL", latTol); err != nil {
		return err
	}
	handicap, err := envFloat("BENCHGATE_HANDICAP", 0)
	if err != nil {
		return err
	}
	if handicap > 0 {
		fmt.Printf("benchgate: applying synthetic %.0f%% throughput handicap\n", 100*handicap)
	}
	benchgate.ApplyHandicap(cur, handicap)
	latHandicap, err := envFloat("BENCHGATE_LAT_HANDICAP", 0)
	if err != nil {
		return err
	}
	if latHandicap > 0 {
		fmt.Printf("benchgate: applying synthetic %.0f%% latency handicap\n", 100*latHandicap)
	}
	benchgate.ApplyLatencyHandicap(cur, latHandicap)
	overheadHandicap, err := envFloat("BENCHGATE_OVERHEAD_HANDICAP", 0)
	if err != nil {
		return err
	}
	if overheadHandicap > 0 {
		fmt.Printf("benchgate: applying synthetic +%.0fpt overhead handicap\n", overheadHandicap)
	}
	benchgate.ApplyOverheadHandicap(cur, overheadHandicap)
	for _, e := range cur.Benchmarks {
		if e.Kind == benchgate.KindLatency {
			fmt.Printf("benchgate: %-24s %12.0f p50-ns    %8.1f speedup-x\n",
				e.Name, e.P50Ns, e.SpeedupX)
			continue
		}
		if e.Kind == benchgate.KindOverhead {
			fmt.Printf("benchgate: %-24s %12.1f overhead-pct (ceiling %.0f)\n",
				e.Name, e.OverheadPct, benchgate.MaxOverheadPct)
			continue
		}
		if e.OpsPerSec > 0 {
			fmt.Printf("benchgate: %-24s %12.0f decisions/s %6d allocs/op\n",
				e.Name, e.OpsPerSec, e.AllocsPerOp)
			continue
		}
		fmt.Printf("benchgate: %-24s %12.0f cycles/s  %6d allocs/op\n",
			e.Name, e.CyclesPerSec, e.AllocsPerOp)
	}
	if bad := benchgate.Compare(base, cur, tol, latTol); len(bad) > 0 {
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", v)
		}
		return fmt.Errorf("%d regression(s) vs %s (tolerance %.0f%%, latency %.0f%%)", len(bad), baseline, 100*tol, 100*latTol)
	}
	fmt.Printf("benchgate: PASS vs %s (tolerance %.0f%%, latency %.0f%%)\n", baseline, 100*tol, 100*latTol)
	return nil
}
