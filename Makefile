# Build, test and verification entry points. `make ci` is the gate run
# before merging: vet plus the race-detector pass over the packages that
# do concurrent work (the sweep engine and the session facade it drives).

GO ?= go

.PHONY: all build test bench race ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short benchmarks (one iteration per figure driver).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Race-detector pass over the concurrent packages.
race:
	$(GO) test -race ./internal/exp/... ./internal/core/...

ci:
	$(GO) vet ./...
	$(GO) test -race ./internal/exp/... ./internal/core/...
	$(GO) test ./...

clean:
	$(GO) clean ./...
