# Build, test and verification entry points. `make ci` is the gate run
# before merging: vet (plus staticcheck when installed), the
# race-detector pass over the packages that do concurrent work (the sweep
# engine, the session facade it drives, the retry/journal fault-tolerance
# layer, the tracing collector, and the qosd admission server), the full
# test suite — which includes the daemon's httptest smoke and the
# 50-client concurrent-admission soak — a trace-emit benchmark smoke,
# and a short fuzz run over the checkpoint-journal decoder.

GO ?= go

.PHONY: all build test bench race fuzz staticcheck bench-trace ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short benchmarks (one iteration per figure driver).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Race-detector pass over the concurrent packages.
race:
	$(GO) test -race ./internal/exp/... ./internal/core/... ./internal/journal/... ./internal/retry/... ./internal/trace/... ./internal/server/...

# Static analysis beyond vet; skipped (not failed) when the tool is not
# installed, so CI works on a bare Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

# Trace-collector benchmark smoke: one iteration of the enabled and
# disabled emit paths, so a regression that makes the no-op path allocate
# or slow down is visible in CI output.
bench-trace:
	$(GO) test -bench=BenchmarkEmit -benchtime=100x -run='^$$' ./internal/trace

# Time-boxed fuzz pass over the journal line decoder (crash-recovery
# parsing of arbitrary bytes).
fuzz:
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s

ci:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	$(GO) test -race ./internal/exp/... ./internal/core/... ./internal/journal/... ./internal/retry/... ./internal/trace/... ./internal/server/...
	$(GO) test ./...
	$(GO) test -run 'TestEndpointsSmoke|TestAdmissionTable' -count=1 ./internal/server
	$(GO) test -bench=BenchmarkEmit -benchtime=100x -run='^$$' ./internal/trace
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s

clean:
	$(GO) clean ./...
