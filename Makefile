# Build, test and verification entry points. `make ci` is the gate run
# before merging: vet, the race-detector pass over the packages that do
# concurrent work (the sweep engine, the session facade it drives, and
# the retry/journal fault-tolerance layer), the full test suite, and a
# short fuzz run over the checkpoint-journal decoder.

GO ?= go

.PHONY: all build test bench race fuzz ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short benchmarks (one iteration per figure driver).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Race-detector pass over the concurrent packages.
race:
	$(GO) test -race ./internal/exp/... ./internal/core/... ./internal/journal/... ./internal/retry/...

# Time-boxed fuzz pass over the journal line decoder (crash-recovery
# parsing of arbitrary bytes).
fuzz:
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s

ci:
	$(GO) vet ./...
	$(GO) test -race ./internal/exp/... ./internal/core/... ./internal/journal/... ./internal/retry/...
	$(GO) test ./...
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s

clean:
	$(GO) clean ./...
