# Build, test and verification entry points. `make ci` is the gate run
# before merging: vet plus staticcheck (hard-required when $CI is set,
# soft-skipped with an explicit SKIPPED line on developer machines
# without the tool), the race-detector pass over the concurrent packages
# (plus the pinned stream-driver tests), the full test suite — which
# includes the daemon's httptest smoke, the 50-client concurrent-
# admission soak and the serial-vs-sharded equivalence suite — the
# race-enabled distributed-sweep chaos suite (`make chaos`), the
# stream-replay determinism gate (`make stream-replay`: the committed
# golden arrival trace must yield byte-identical qosd decision journals
# across two fresh drives), a trace-emit benchmark smoke, short fuzz
# runs over the checkpoint-journal and sweep-wire decoders, and the
# simulator-core performance gate against the committed BENCH_core.json
# baseline (see internal/benchgate; BENCHGATE_HANDICAP=0.6,
# BENCHGATE_LAT_HANDICAP=4 and BENCHGATE_OVERHEAD_HANDICAP=10 inject
# synthetic regressions to prove the gates trip, and the
# internal/benchgate self-tests pin that a tree reverted to pre-wheel
# throughput fails the committed baseline's floors).

GO ?= go

.PHONY: all build test bench race chaos fuzz staticcheck bench-trace bench-core bench-json bench-gate fleet stream-replay ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short benchmarks (one iteration per figure driver).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# The race-pass package list is derived, not hand-maintained: a package
# is raced iff it (or its tests) imports sync or sync/atomic — the
# repo-wide convention for "does concurrent work". Channel-only packages
# (trace, retry) are single-owner by design and documented as such.
RACE_TMPL = {{$$p := .ImportPath}}\
{{range .Imports}}{{if or (eq . "sync") (eq . "sync/atomic")}}{{$$p}}{{"\n"}}{{end}}{{end}}\
{{range .TestImports}}{{if or (eq . "sync") (eq . "sync/atomic")}}{{$$p}}{{"\n"}}{{end}}{{end}}\
{{range .XTestImports}}{{if or (eq . "sync") (eq . "sync/atomic")}}{{$$p}}{{"\n"}}{{end}}{{end}}
RACE_PKGS = $(shell $(GO) list -f '$(RACE_TMPL)' ./internal/... | sort -u)

# Race-detector pass: the derived concurrent packages, plus the root
# package's sharded-stepping equivalence tests (the full root integration
# suite is too slow to race wholesale; TestShard* is the part that spins
# up the worker pool). The event-wheel home package (internal/gpu) is in
# the derived list via its sync import, but its wheel-vs-legacy
# equivalence tests are pinned by name too: they exercise the sharded
# drain/wake hand-off, and pinning keeps them raced even if a refactor
# ever drops the sync import that puts gpu on the derived list.
race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -count=1 -run 'TestWheel' ./internal/gpu
	$(GO) test -race -count=1 -run 'TestShard' .
	$(GO) test -race -short -count=1 ./internal/stream

# Deterministic chaos suite for the distributed sweep: scripted worker
# kills, dropped/duplicated/delayed result deliveries, blackholed
# heartbeats forcing lease-expiry races — raced and uncached, asserting
# byte-identical merges and single-append journals every time.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestSoakKillOne' ./internal/distsweep

# Static analysis beyond vet. On developer machines without the tool the
# target is skipped; in CI ($CI set) a missing binary is a hard failure so
# the workflow cannot silently lose the check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	elif [ -n "$$CI" ]; then echo "staticcheck required in CI but not installed" >&2; exit 1; \
	else echo "SKIPPED: staticcheck (not installed; CI enforces it, install locally for parity)"; fi

# Trace-collector benchmark smoke: one iteration of the enabled and
# disabled emit paths, so a regression that makes the no-op path allocate
# or slow down is visible in CI output.
bench-trace:
	$(GO) test -bench=BenchmarkEmit -benchtime=100x -run='^$$' ./internal/trace

# Simulator-core benchmarks: throughput (serial and sharded stepping),
# the admission and fleet-placement fast-path latency benchmarks
# (p50-ns / speedup-x), the distributed-sweep coordination-tax benchmark
# (overhead-pct), and the sustained stream-admission throughput
# benchmark (decisions/s; the iteration count is pinned because a
# long-lived daemon's retained job log makes per-decision cost drift
# with run length — comparisons are only valid at equal counts).
bench-core:
	$(GO) test -bench='BenchmarkSimulatorCycles' -benchtime=3x -benchmem -count=1 -run='^$$' .
	$(GO) test -bench='BenchmarkAdmission' -benchtime=200x -benchmem -count=1 -run='^$$' ./internal/server
	$(GO) test -bench='BenchmarkFleetPlacement' -benchtime=200x -benchmem -count=1 -run='^$$' ./internal/fleet
	$(GO) test -bench='BenchmarkDistSweepOverhead' -benchtime=5x -benchmem -count=1 -run='^$$' ./internal/distsweep
	$(GO) test -bench='BenchmarkStreamAdmission' -benchtime=100x -benchmem -count=1 -run='^$$' ./internal/stream

# Rewrite the committed performance baseline from the current tree. Run
# on the reference machine, review the diff, and commit BENCH_core.json.
bench-json:
	$(MAKE) bench-core | $(GO) run ./cmd/benchgate -update -o BENCH_core.json

# Gate the current tree against the committed baseline: fail on a >10%
# throughput drop, an allocs/op rise, a >50% admission-p50 rise, or an
# admission speedup below the 50x floor (see internal/benchgate).
bench-gate:
	$(MAKE) bench-core | $(GO) run ./cmd/benchgate -baseline BENCH_core.json

# Time-boxed fuzz passes over the decoders that parse bytes from disk or
# the network: the checkpoint-journal line decoder (crash recovery) and
# the distributed-sweep wire decoders (lease grants, result reports).
fuzz:
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s
	$(GO) test ./internal/distsweep -run='^$$' -fuzz=FuzzLeaseDecode -fuzztime=10s

# Fleet smoke: the multi-node placement acceptance suite — deterministic
# placements with byte-identical journal recovery on the heterogeneous
# 4-node fleet, the repartition-beats-first-fit scenario, and the /v2
# HTTP surface — raced and uncached.
fleet:
	$(GO) test -race -count=1 -run 'TestFleetPlacementDeterminism|TestRepartitionPlacesWhatFirstFitRejects' ./internal/fleet
	$(GO) test -race -count=1 -run 'TestV2' ./internal/server

# Stream-replay determinism gate: the committed golden arrival trace
# must (a) regenerate byte-identically from its spec and (b) produce
# byte-identical qosd decision journals when driven through two fresh
# daemons. STREAM_ARTIFACT_DIR (set by CI) receives the diverging
# journals on failure.
stream-replay:
	$(GO) test -count=1 -run 'TestStreamGoldenTrace|TestStreamReplayDeterminism' ./internal/stream

ci:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(MAKE) race
	$(MAKE) chaos
	$(MAKE) fleet
	$(GO) test ./...
	$(GO) test -run 'TestEndpointsSmoke|TestAdmissionTable' -count=1 ./internal/server
	$(MAKE) stream-replay
	$(MAKE) bench-trace
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=10s
	$(GO) test ./internal/distsweep -run='^$$' -fuzz=FuzzLeaseDecode -fuzztime=10s
	$(MAKE) bench-gate

clean:
	$(GO) clean ./...
