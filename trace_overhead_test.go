package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestDisabledTracerOverheadUnderTwoPercent bounds the cost tracing adds
// to the simulator hot loop when it is off. The bound is computed
// analytically rather than by differencing two noisy wall-clock runs:
//
//	overhead ≈ E × t_emit  vs  t_sim
//
// where E is the number of emit calls one window actually makes (counted
// by running the same co-run with tracing ON), t_emit is the measured
// cost of a disabled emit (a nil/enabled check, no argument boxing), and
// t_sim is the measured time to simulate the window. E × t_emit must
// stay under 2% of t_sim with a wide margin.
func TestDisabledTracerOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark")
	}
	const window = 30_000
	ctx := context.Background()
	s, err := core.NewSession(core.WithWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.KernelSpec{
		{Workload: "sgemm", GoalFrac: 0.7},
		{Workload: "lbm"},
	}
	// Count the emit calls one window makes (enabled run, no drops).
	tr := trace.New(1 << 20)
	if _, err := s.RunTraced(ctx, specs, core.SchemeRollover, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; grow the ring so E is exact", tr.Dropped())
	}
	emits := tr.Len()

	// Cost of one disabled emit.
	off := trace.New(8)
	off.SetEnabled(false)
	bEmit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			off.QuotaGrant(int64(i), 0, 1, 1)
		}
	})
	// NsPerOp truncates to whole nanoseconds and the no-op emit is
	// sub-nanosecond, so compute the exact per-op cost.
	tEmit := float64(bEmit.T.Nanoseconds()) / float64(bEmit.N)

	// Cost of simulating one window (untraced, the production path).
	bSim := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(ctx, specs, core.SchemeRollover); err != nil {
				b.Fatal(err)
			}
		}
	})
	tSim := float64(bSim.NsPerOp())

	overhead := float64(emits) * tEmit
	frac := overhead / tSim
	t.Logf("%d emits × %.2f ns = %.0f ns against %.0f ns/window → %.4f%% overhead",
		emits, tEmit, overhead, tSim, 100*frac)
	if frac >= 0.02 {
		t.Fatalf("disabled tracer costs %.2f%% of the hot loop, budget is 2%%", 100*frac)
	}
}
