package repro_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// shardedSession builds a session stepping the SMs in n shards on a pool
// forced to 4 workers, so the serial-vs-sharded comparisons interleave
// real goroutines even on single-CPU hosts (and `go test -race
// -run TestShard .` exercises the pool properly). The isolated-IPC cache
// is shared across the compared sessions: sharding is bit-identical by
// contract, so the baselines are interchangeable — and each scheme's
// comparison then measures them only once.
func shardedSession(t *testing.T, n int, cache *core.IsolatedCache) *core.Session {
	t.Helper()
	s, err := core.NewSession(
		core.WithWindow(30_000),
		core.WithShards(n),
		core.WithShardWorkers(4),
		core.WithIsolatedCache(cache),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardEquivalenceSchemes runs the golden co-run under the Rollover
// and Elastic schemes at -shards=1,2,4 and requires bit-identical
// results: the full JSONL event trace (epoch rolls, quota grants,
// carries, replenishes — every control decision), the final per-kernel
// IPCs, and the complete per-kernel stats.
func TestShardEquivalenceSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	for _, scheme := range []core.Scheme{core.SchemeRollover, core.SchemeElastic} {
		t.Run(scheme.Name(), func(t *testing.T) {
			cache := core.NewIsolatedCache()
			type outcome struct {
				res   *core.Result
				trace []byte
			}
			run := func(shards int) outcome {
				tr := trace.New(trace.DefaultRingSize)
				s := shardedSession(t, shards, cache)
				res, err := s.RunTraced(context.Background(), goldenSpecs(), scheme, tr)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := trace.Export(&buf, tr, trace.FormatJSONL); err != nil {
					t.Fatal(err)
				}
				return outcome{res, buf.Bytes()}
			}
			ref := run(1)
			for _, n := range []int{2, 4} {
				got := run(n)
				if !bytes.Equal(got.trace, ref.trace) {
					gl, rl := bytes.Split(got.trace, []byte("\n")), bytes.Split(ref.trace, []byte("\n"))
					for i := 0; i < len(gl) && i < len(rl); i++ {
						if !bytes.Equal(gl[i], rl[i]) {
							t.Fatalf("shards=%d: trace diverges at line %d:\nsharded: %s\n serial: %s",
								n, i+1, gl[i], rl[i])
						}
					}
					t.Fatalf("shards=%d: trace length %d lines, serial %d", n, len(gl), len(rl))
				}
				if got.res.Cycles != ref.res.Cycles || got.res.TotalIPC != ref.res.TotalIPC {
					t.Fatalf("shards=%d: cycles/IPC %d/%v, serial %d/%v",
						n, got.res.Cycles, got.res.TotalIPC, ref.res.Cycles, ref.res.TotalIPC)
				}
				for i := range ref.res.Kernels {
					if got.res.Kernels[i].IPC != ref.res.Kernels[i].IPC {
						t.Errorf("shards=%d: kernel %d IPC %v, serial %v",
							n, i, got.res.Kernels[i].IPC, ref.res.Kernels[i].IPC)
					}
					if !reflect.DeepEqual(got.res.Kernels[i].Stats, ref.res.Kernels[i].Stats) {
						t.Errorf("shards=%d: kernel %d stats diverged\nsharded: %+v\n serial: %+v",
							n, i, got.res.Kernels[i].Stats, ref.res.Kernels[i].Stats)
					}
				}
			}
		})
	}
}

// TestShardedGoldenTrace pins sharded stepping to the committed golden
// trace file directly: the byte stream a -shards=4 run exports must match
// what the serial simulator wrote when the golden was recorded.
func TestShardedGoldenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "rollover_trace.golden.jsonl"))
	if err != nil {
		t.Fatalf("%v (record it with `go test -run TestGoldenRolloverTrace -update-golden`)", err)
	}
	tr := trace.New(trace.DefaultRingSize)
	s := shardedSession(t, 4, core.NewIsolatedCache())
	if _, err := s.RunTraced(context.Background(), goldenSpecs(), core.SchemeRollover, tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Export(&buf, tr, trace.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("sharded trace diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("sharded trace length %d lines, golden has %d", len(gl), len(wl))
	}
}
